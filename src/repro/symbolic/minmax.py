"""Min/max combinations of affine expressions: piecewise-affine bounds.

Loop bounds in the accepted source language may be ``min``/``max`` of
affine expressions in the size symbols (e.g. ``for i = max(0, n - m) <- 1
-> min(n, 2*m)``).  An :class:`Extremum` is such a term.  The structural
restriction that keeps every downstream derivation *conjunctive* is:

* a **lower** bound is a plain :class:`Affine` or a ``max`` form, so
  ``e >= max(a, b)`` expands to the conjunction ``e >= a  and  e >= b``;
* an **upper** bound is a plain :class:`Affine` or a ``min`` form, so
  ``e <= min(c, d)`` expands to ``e <= c  and  e <= d``.

Only at *bound-pinning* sites (the face solutions of
:mod:`repro.core.firstlast` and the i/o endpoints of
:mod:`repro.core.io_comm`, where a bound's *value* enters an affine
solution) does an extremum force a case split; :func:`bound_alternatives`
produces the selector guards for that split.

The arithmetic stays exact and closed over the two kinds:

* ``min``s add pairwise (``min_i x_i + min_j y_j = min_{i,j}(x_i+y_j)``),
  likewise ``max``;
* scaling by a negative constant flips the kind
  (``-min(a, b) = max(-a, -b)``).

Instances are hash-consed like :class:`Affine`: the smart constructor
:func:`extremum` flattens, dedupes, folds constant-offset redundancy and
sorts arguments into a canonical rendering order, so structurally equal
terms are the same object and ``str()`` is byte-stable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence, Union
from weakref import WeakValueDictionary

from repro.symbolic.affine import Affine, AffineLike, Numeric, register_vec_passthrough
from repro.symbolic.guard import Constraint
from repro.symbolic.intern import counter
from repro.util.errors import SymbolicError

#: Anything accepted where a loop/variable bound is expected.
Bound = Union["Extremum", Affine]
BoundLike = Union["Extremum", Affine, int, Fraction]


class Extremum:
    """An immutable, hash-consed ``min``/``max`` of >= 2 affine arguments.

    Do not call the constructor directly -- use :func:`extremum` (or the
    :meth:`min_of` / :meth:`max_of` helpers), which normalizes and may
    collapse to a plain :class:`Affine`.
    """

    __slots__ = ("kind", "args", "_hash", "__weakref__")

    _intern: "WeakValueDictionary[tuple, Extremum]" = WeakValueDictionary()
    _stats = counter("extremum_intern")

    def __new__(cls, kind: str, args: tuple[Affine, ...]) -> "Extremum":
        key = (kind, args)
        stats = cls._stats
        self = cls._intern.get(key)
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Extremum is immutable")

    def __reduce__(self):
        # Re-intern through the smart constructor on unpickle.
        return (extremum, (self.kind, self.args))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        # Normalization folds all-constant argument lists to an Affine,
        # so a live Extremum always has a symbolic argument.
        return False

    @property
    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    # ------------------------------------------------------------------
    # arithmetic (closed over the kind)
    # ------------------------------------------------------------------
    def __add__(self, other: BoundLike) -> "Bound":
        if isinstance(other, Extremum):
            if other.kind != self.kind:
                raise SymbolicError(
                    f"cannot add {self.kind} and {other.kind} forms: "
                    f"({self}) + ({other})"
                )
            # min_i x_i + min_j y_j = min_{i,j} (x_i + y_j); same for max.
            return extremum(
                self.kind, [a + b for a in self.args for b in other.args]
            )
        o = Affine.lift(other)
        return extremum(self.kind, [a + o for a in self.args])

    __radd__ = __add__

    def __sub__(self, other: BoundLike) -> "Bound":
        return self + (-_as_bound(other))

    def __rsub__(self, other: BoundLike) -> "Bound":
        return (-self) + _as_bound(other)

    def __neg__(self) -> "Extremum":
        return extremum(_flip(self.kind), [-a for a in self.args])

    def __mul__(self, other: AffineLike) -> "Bound":
        k = Affine.lift(other)
        if not k.is_constant:
            raise SymbolicError(f"non-affine product: ({self}) * ({k})")
        c = k.const
        if c == 0:
            return Affine.constant(0)
        kind = self.kind if c > 0 else _flip(self.kind)
        return extremum(kind, [a * c for a in self.args])

    __rmul__ = __mul__

    def __truediv__(self, other: AffineLike) -> "Bound":
        k = Affine.lift(other)
        if not k.is_constant or k.const == 0:
            raise SymbolicError(f"bad division: ({self}) / ({k})")
        return self * (Fraction(1) / k.const)

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def subs(self, mapping: Mapping[str, AffineLike]) -> "Bound":
        return extremum(self.kind, [a.subs(mapping) for a in self.args])

    def evaluate(self, env: Mapping[str, Numeric]) -> Fraction:
        pick = min if self.kind == "min" else max
        return pick(a.evaluate(env) for a in self.args)

    def evaluate_int(self, env: Mapping[str, Numeric]) -> int:
        v = self.evaluate(env)
        if v.denominator != 1:
            raise SymbolicError(
                f"{self} evaluates to non-integer {v} under {dict(env)}"
            )
        return int(v)

    # ------------------------------------------------------------------
    # comparison / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, type(self)):
            return self.kind == other.kind and self.args == other.args
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.kind}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"Extremum({self})"


register_vec_passthrough(Extremum)


def _flip(kind: str) -> str:
    return "max" if kind == "min" else "min"


def _as_bound(value: BoundLike) -> Bound:
    if isinstance(value, Extremum):
        return value
    return Affine.lift(value)


#: Public lifting helper: Extremum passes through, everything else via
#: :meth:`Affine.lift`.
as_bound = _as_bound


def extremum(kind: str, args: Iterable[BoundLike]) -> Bound:
    """Normalizing constructor: flatten, dedupe, fold, sort, intern.

    Collapses to a plain :class:`Affine` whenever only one argument
    survives normalization (including the all-constant case).
    """
    if kind not in ("min", "max"):
        raise SymbolicError(f"extremum kind must be 'min' or 'max', got {kind!r}")
    flat: list[Affine] = []
    for raw in args:
        b = _as_bound(raw)
        if isinstance(b, Extremum):
            if b.kind != kind:
                raise SymbolicError(
                    f"cannot nest a {b.kind} form inside a {kind} form: {b}"
                )
            flat.extend(b.args)
        else:
            flat.append(b)
    if not flat:
        raise SymbolicError(f"{kind}() needs at least one argument")
    # Drop arguments dominated by another with a constant offset:
    # min(a, a + 2) = a, and fold constants against each other.
    keep: list[Affine] = []
    for cand in flat:
        dominated = False
        for i, prior in enumerate(keep):
            diff = cand - prior
            if not diff.is_constant:
                continue
            better = diff.const < 0 if kind == "min" else diff.const > 0
            if better:
                keep[i] = cand
            dominated = True
            break
        if not dominated:
            keep.append(cand)
    if len(keep) == 1:
        return keep[0]
    keep.sort(key=str)
    return Extremum(kind, tuple(keep))


def min_of(*args: BoundLike) -> Bound:
    return extremum("min", args)


def max_of(*args: BoundLike) -> Bound:
    return extremum("max", args)


# ----------------------------------------------------------------------
# constraint expansion (the conjunctive lowering)
# ----------------------------------------------------------------------

def bound_args(bound: BoundLike) -> tuple[Affine, ...]:
    """The affine alternatives of a bound (singleton for a plain affine)."""
    b = _as_bound(bound)
    if isinstance(b, Extremum):
        return b.args
    return (b,)


def check_bound_kind(bound: Bound, kind: str, what: str) -> None:
    """Enforce the lower=max / upper=min structural restriction."""
    if isinstance(bound, Extremum) and bound.kind != kind:
        raise SymbolicError(
            f"{what} must be a plain affine or a {kind} form, got {bound}"
        )


def lower_bound_constraints(expr: AffineLike, bound: BoundLike) -> tuple[Constraint, ...]:
    """``expr >= bound`` as a conjunction (bound plain or max-form)."""
    b = _as_bound(bound)
    check_bound_kind(b, "max", "a lower bound")
    return tuple(Constraint.ge(expr, a) for a in bound_args(b))


def upper_bound_constraints(expr: AffineLike, bound: BoundLike) -> tuple[Constraint, ...]:
    """``expr <= bound`` as a conjunction (bound plain or min-form)."""
    b = _as_bound(bound)
    check_bound_kind(b, "min", "an upper bound")
    return tuple(Constraint.le(expr, a) for a in bound_args(b))


def bound_le_constraints(lo: BoundLike, hi: BoundLike) -> tuple[Constraint, ...]:
    """``lo <= hi`` as a conjunction (lo plain/max-form, hi plain/min-form)."""
    lo_b, hi_b = _as_bound(lo), _as_bound(hi)
    check_bound_kind(lo_b, "max", "a lower bound")
    check_bound_kind(hi_b, "min", "an upper bound")
    return tuple(
        Constraint.le(a, b) for a in bound_args(lo_b) for b in bound_args(hi_b)
    )


def bound_alternatives(bound: BoundLike) -> tuple[tuple[tuple[Constraint, ...], Affine], ...]:
    """Case-split a bound into ``(selector constraints, affine value)`` pairs.

    For ``max(a, b)`` the alternatives are ``(a >= b, a)`` and
    ``(b >= a, b)``; for ``min`` the comparisons flip.  The selector
    guards jointly cover all of parameter space (ties satisfy both and
    the values agree there), so a pinning derivation that splits on them
    needs no null default.  A plain affine yields the single alternative
    with no selector.
    """
    b = _as_bound(bound)
    if not isinstance(b, Extremum):
        return (((), b),)
    out = []
    for value in b.args:
        if b.kind == "max":
            sel = tuple(
                Constraint.ge(value, other) for other in b.args if other is not value
            )
        else:
            sel = tuple(
                Constraint.le(value, other) for other in b.args if other is not value
            )
        out.append((sel, value))
    return tuple(out)


def render_bound(bound: BoundLike, render_affine) -> str:
    """Render a bound as Python source via ``render_affine`` (an
    ``Affine -> str`` renderer); extremum forms become the ``min``/``max``
    builtins so the generated module needs no runtime support."""
    b = _as_bound(bound)
    if not isinstance(b, Extremum):
        return render_affine(b)
    inner = ", ".join(render_affine(a) for a in b.args)
    return f"{b.kind}({inner})"
