"""repro -- a reproduction of Barnett & Lengauer's systolizing compilation
scheme (ECS-LFCS-91-134 / ICPP 1991).

The library compiles nested-loop source programs plus linear systolic-array
specifications (``step``/``place``) into abstract distributed-memory
programs, renders them in three target notations, and executes them on a
deterministic asynchronous simulator, verifying against a sequential
oracle.

Quickstart::

    from repro import (
        parse_program, SystolicArray, compile_systolic, verify_design,
    )
    from repro.geometry import Matrix, Point

    program = parse_program('''
        size n
        var a[0..n], b[0..n], c[0..2*n]
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n
            c[i+j] := c[i+j] + a[i] * b[j]
    ''')
    array = SystolicArray(
        step=Matrix([[2, 1]]), place=Matrix([[1, 0]]),
        loading_vectors={"a": Point.of(1)},
    )
    systolic = compile_systolic(program, array)
    print(systolic.summary())
    report = verify_design(program, array, {"n": 8}, compiled=systolic)
    assert report.matched
"""

from repro.core.program import StreamPlan, SystolicProgram
from repro.core.scheme import compile_systolic
from repro.fuzz import FuzzInstance, FuzzSummary, fuzz_run, generate_instance
from repro.lang.interpreter import run_sequential
from repro.lang.parser import parse_affine, parse_program
from repro.lang.program import Loop, SourceProgram
from repro.lang.validate import validate_program
from repro.parallel import SweepResult, SweepTimings, sweep_designs
from repro.runtime.network import build_network, execute
from repro.systolic.designs import (
    all_paper_designs,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
)
from repro.systolic.explore import DesignCost, explore_designs
from repro.systolic.schedule import synthesize_array, synthesize_places, synthesize_step
from repro.systolic.spec import SystolicArray
from repro.target.build import build_target_program
from repro.target.cgen import render_c
from repro.target.occam import render_occam
from repro.target.pretty import render_paper
from repro.target.pygen import render_python
from repro.verify.equivalence import random_inputs, verify_design
from repro.verify.theorems import check_all_theorems

__version__ = "1.0.0"

__all__ = [
    "StreamPlan",
    "SystolicProgram",
    "compile_systolic",
    "FuzzInstance",
    "FuzzSummary",
    "fuzz_run",
    "generate_instance",
    "run_sequential",
    "parse_affine",
    "parse_program",
    "Loop",
    "SourceProgram",
    "validate_program",
    "build_network",
    "execute",
    "SweepResult",
    "SweepTimings",
    "sweep_designs",
    "DesignCost",
    "explore_designs",
    "all_paper_designs",
    "matmul_design_e1",
    "matmul_design_e2",
    "matrix_product_program",
    "polynomial_product_program",
    "polyprod_design_d1",
    "polyprod_design_d2",
    "synthesize_array",
    "synthesize_places",
    "synthesize_step",
    "SystolicArray",
    "build_target_program",
    "render_c",
    "render_occam",
    "render_paper",
    "render_python",
    "random_inputs",
    "verify_design",
    "check_all_theorems",
    "__version__",
]
