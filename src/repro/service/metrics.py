"""Structured request metrics for the compile service.

Everything here is plain counters and fixed-bucket histograms -- cheap
enough to update on every request, JSON-serializable for ``/stats``, and
deterministic to assert on in tests.  The daemon runs a single event loop,
so metric updates need no locking; the snapshot methods return copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyHistogram", "EndpointMetrics", "ServiceMetrics"]


#: Histogram bucket upper bounds in seconds (log-ish scale, "le" semantics
#: like Prometheus); the final bucket is +inf.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation.

    Quantiles are estimated as the upper bound of the bucket containing
    the requested rank -- coarse but monotone, never allocating, and exact
    enough to gate p50/p95 regressions in the benchmark.
    """

    __slots__ = ("counts", "total", "sum_s", "max_s")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS_S) + 1)
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        idx = len(LATENCY_BUCKETS_S)
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if seconds <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += 1
        self.sum_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (seconds)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if i < len(LATENCY_BUCKETS_S):
                    return LATENCY_BUCKETS_S[i]
                return self.max_s
        return self.max_s

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum_s": round(self.sum_s, 6),
            "max_s": round(self.max_s, 6),
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "buckets": {
                (
                    f"le_{bound}"
                    if i < len(LATENCY_BUCKETS_S)
                    else "le_inf"
                ): self.counts[i]
                for i, bound in enumerate(
                    (*LATENCY_BUCKETS_S, float("inf"))
                )
                if self.counts[i]
            },
        }


@dataclass
class EndpointMetrics:
    """Per-endpoint request accounting."""

    requests: int = 0
    errors_4xx: int = 0
    errors_5xx: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record(self, status: int, seconds: float) -> None:
        self.requests += 1
        if 400 <= status < 500:
            self.errors_4xx += 1
        elif status >= 500:
            self.errors_5xx += 1
        self.latency.observe(seconds)

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors_4xx": self.errors_4xx,
            "errors_5xx": self.errors_5xx,
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """The daemon's whole metric surface: endpoints + service-level events."""

    def __init__(self) -> None:
        self.endpoints: dict[str, EndpointMetrics] = {}
        self.rate_limited = 0
        self.timeouts = 0
        self.malformed = 0
        self.connections = 0

    def endpoint(self, name: str) -> EndpointMetrics:
        metrics = self.endpoints.get(name)
        if metrics is None:
            metrics = self.endpoints[name] = EndpointMetrics()
        return metrics

    def record(self, name: str, status: int, seconds: float) -> None:
        self.endpoint(name).record(status, seconds)

    def snapshot(self) -> dict:
        return {
            "rate_limited": self.rate_limited,
            "timeouts": self.timeouts,
            "malformed": self.malformed,
            "connections": self.connections,
            "endpoints": {
                name: m.snapshot() for name, m in sorted(self.endpoints.items())
            },
        }
