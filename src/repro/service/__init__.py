"""The compile service: a long-lived asyncio daemon over the symbolic core.

``repro serve`` turns the compiler from a CLI into a serving system: an
HTTP/JSON daemon (stdlib ``asyncio`` streams, zero hard dependencies)
exposing the whole pipeline -- compile, explore, execute, verify,
fuzz-replay -- over a content-addressed design store keyed by
``design_fingerprint``.  Concurrent identical compiles coalesce onto one
in-flight derivation, tenants are rate-limited by token buckets, requests
carry configurable timeouts whose cancellation never corrupts the shared
memo/caches, and ``/stats`` surfaces per-endpoint latency histograms plus
every cache counter in the stack.

Layout:

* :mod:`repro.service.daemon`    -- HTTP front door, routing, lifecycle;
* :mod:`repro.service.store`     -- content-addressed design store +
  request coalescing;
* :mod:`repro.service.ratelimit` -- bounded per-tenant token buckets;
* :mod:`repro.service.metrics`   -- counters and latency histograms;
* :mod:`repro.service.client`    -- a minimal asyncio JSON client (tests,
  the benchmark, and scripting against a running daemon).
"""

from repro.service.client import ServiceClient
from repro.service.daemon import CompileService, ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.store import DesignStore

__all__ = [
    "CompileService",
    "DesignStore",
    "RateLimiter",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "TokenBucket",
]
