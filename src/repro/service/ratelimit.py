"""Bounded per-tenant token-bucket rate limiting.

A classic token bucket: each tenant accrues ``rate`` tokens per second up
to a ``burst`` ceiling, and each request spends one token.  The limiter
keeps at most ``max_tenants`` buckets, evicting the least-recently-seen
tenant on overflow, so an adversary cycling tenant ids cannot grow server
memory without bound.  The clock is injectable (tests drive a fake one);
the default is ``time.monotonic``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from repro.util.errors import ReproError

__all__ = ["TokenBucket", "RateLimiter"]

DEFAULT_MAX_TENANTS = 1024


class TokenBucket:
    """One tenant's bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)  # start full: first requests never stall
        self.updated = now

    def take(self, now: float) -> bool:
        """Spend one token if available, accruing since the last call."""
        elapsed = now - self.updated
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token will be available (0 when it already is)."""
        elapsed = now - self.updated
        tokens = min(self.burst, self.tokens + max(0.0, elapsed) * self.rate)
        if tokens >= 1.0:
            return 0.0
        return (1.0 - tokens) / self.rate


class RateLimiter:
    """Per-tenant token buckets behind one LRU-bounded table.

    ``rate <= 0`` disables limiting entirely (the default for ad-hoc local
    serving); the CLI exposes it as ``repro serve --rate``.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: int = 1,
        *,
        max_tenants: int = DEFAULT_MAX_TENANTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate > 0 and burst < 1:
            raise ReproError(f"rate-limit burst must be >= 1, got {burst}")
        if max_tenants < 1:
            raise ReproError(f"max_tenants must be >= 1, got {max_tenants}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.max_tenants = max_tenants
        self.clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.allowed = 0
        self.rejected = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def _bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate, self.burst, now
            )
            while len(self._buckets) > self.max_tenants:
                self._buckets.popitem(last=False)
                self.evictions += 1
        else:
            self._buckets.move_to_end(tenant)
        return bucket

    def allow(self, tenant: str) -> bool:
        """True if ``tenant`` may proceed (spends a token)."""
        if not self.enabled:
            self.allowed += 1
            return True
        now = self.clock()
        if self._bucket(tenant, now).take(now):
            self.allowed += 1
            return True
        self.rejected += 1
        return False

    def retry_after(self, tenant: str) -> float:
        """Seconds the tenant should wait before retrying."""
        if not self.enabled:
            return 0.0
        now = self.clock()
        return self._bucket(tenant, now).retry_after(now)

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "rate_per_s": self.rate,
            "burst": self.burst,
            "tenants": len(self._buckets),
            "allowed": self.allowed,
            "rejected": self.rejected,
            "evictions": self.evictions,
        }
