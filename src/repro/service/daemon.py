"""The compile service daemon: HTTP/JSON over stdlib asyncio streams.

One event loop owns the sockets; CPU-bound pipeline stages (compilation,
execution, exploration, fuzz replay) run on a small thread pool so the
loop keeps accepting connections while the symbolic core works.  All
shared caches underneath (``MEMO``, the pygen module cache, wavefront and
partition schedule LRUs) took a thread-safety pass for exactly this
topology; the design store additionally coalesces concurrent identical
compiles into one derivation.

Endpoints (all JSON; ``POST`` unless noted)::

    GET  /healthz      liveness + store occupancy
    GET  /stats        per-endpoint latency histograms + every cache counter
    POST /compile      {source, design[, emit]} | {fingerprint[, emit]}
    POST /execute      {source+design | fingerprint, sizes[, backend, seed,
                        batch, array, check]}
    POST /verify       {source+design | fingerprint, sizes[, backend, seed,
                        capacity]}
    POST /explore      {source[, bound, sizes, limit]}
    POST /fuzz-replay  {ref[, corpus_dir]}

Error contract: library errors map through
:func:`repro.util.errors.http_status` (malformed programs/designs are 4xx
with the parser's diagnostic text; scheme limits are 422; runtime faults
5xx); unexpected exceptions are a structured 500 body -- the daemon itself
keeps serving.  Request timeouts return 504 and *never* cancel the
underlying derivation, so shared caches cannot be corrupted mid-write.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Awaitable, Callable, Mapping

from repro.service.metrics import ServiceMetrics
from repro.service.ratelimit import RateLimiter
from repro.service.store import DesignStore, StoredDesign
from repro.util.errors import ReproError, http_status

__all__ = ["CompileService", "ServiceConfig", "state_to_json"]

PROTOCOL_VERSION = 1

#: request headers are bounded to keep a hostile client from ballooning
#: the parser; bodies are bounded separately via ``max_body_bytes``
_MAX_HEADER_LINE = 8192
_MAX_HEADERS = 64

_EMITTERS = ("paper", "occam", "c", "none")


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is ``service.port``)
    rate: float = 0.0  # tokens/s per tenant; <= 0 disables limiting
    burst: int = 8  # bucket capacity once limiting is on
    timeout_s: float = 30.0  # per-request wall clock
    workers: int = 1  # executor threads for pipeline stages
    max_tenants: int = 1024
    max_body_bytes: int = 4 * 1024 * 1024
    max_designs: int = 512
    corpus_dir: str = "tests/fuzz_corpus"

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ReproError(
                f"request timeout must be positive, got {self.timeout_s}"
            )
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.rate > 0 and self.burst < 1:
            raise ReproError(f"burst must be >= 1, got {self.burst}")
        if self.max_body_bytes < 1024:
            raise ReproError(
                f"max body size must be >= 1024 bytes, got {self.max_body_bytes}"
            )


class _HttpError(Exception):
    """An error with a fixed HTTP status, raised by the request plumbing."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.extra = extra


def _json_value(value: Any) -> Any:
    """A JSON-safe scalar: ints pass through, Fractions become 'p/q'."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, float):
        return value
    return str(value)


def state_to_json(final: Mapping[str, Mapping[tuple, Any]]) -> dict:
    """Serialize executor output {var: {index-tuple: value}} for JSON.

    Index tuples become sorted ``[i, j, ..., value]`` rows, so equal
    states serialize identically regardless of dict insertion order --
    the property the bit-identity gates in the benchmark rely on.
    """
    out: dict[str, list] = {}
    for var, elements in sorted(final.items()):
        rows = sorted(
            (list(index), _json_value(value)) for index, value in elements.items()
        )
        out[var] = [[*index, value] for index, value in rows]
    return out


class CompileService:
    """One daemon instance: a design store, a limiter, and the routes."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.limiter = RateLimiter(
            rate=self.config.rate,
            burst=self.config.burst,
            max_tenants=self.config.max_tenants,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        self.store = DesignStore(
            executor=self.executor, max_designs=self.config.max_designs
        )
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = time.monotonic()
        self.requests_served = 0
        self._routes: dict[tuple[str, str], Callable[..., Awaitable[dict]]] = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/stats"): self._handle_stats,
            ("POST", "/compile"): self._handle_compile,
            ("POST", "/execute"): self._handle_execute,
            ("POST", "/verify"): self._handle_verify,
            ("POST", "/explore"): self._handle_explore,
            ("POST", "/fuzz-replay"): self._handle_fuzz_replay,
        }

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ReproError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._started = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        """Stop accepting, drain open connections, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` main loop)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    self.metrics.malformed += 1
                    await self._respond(
                        writer,
                        exc.status,
                        {"error": str(exc), **exc.extra},
                        close=True,
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._dispatch(
                    method, path, headers, body
                )
                try:
                    await self._respond(
                        writer, status, payload, close=not keep_alive
                    )
                except (ConnectionError, BrokenPipeError):
                    return
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            # service shutdown cancels connection handlers; finishing the
            # task normally keeps asyncio.streams' connection_made callback
            # from re-raising the cancellation as a logged error
            return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            # close without awaiting wait_closed(): the response is already
            # drained, and awaiting here races loop teardown cancellation
            try:
                writer.close()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One HTTP/1.1 request: ``(method, path, headers, body)`` or None."""
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        if len(line) > _MAX_HEADER_LINE:
            raise _HttpError(431, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, f"malformed request line: {line[:64]!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > _MAX_HEADER_LINE:
                raise _HttpError(431, "header line too long")
            if len(headers) >= _MAX_HEADERS:
                raise _HttpError(431, "too many headers")
            name, sep, value = header.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {header[:64]!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise _HttpError(400, "negative Content-Length")
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        close: bool,
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            413: "Payload Too Large",
            422: "Unprocessable Entity",
            429: "Too Many Requests",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error",
            501: "Not Implemented",
            504: "Gateway Timeout",
        }.get(status, "OK" if status < 400 else "Error")
        body = json.dumps(payload, sort_keys=True).encode()
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    # -- dispatch -----------------------------------------------------------

    def _endpoint_name(self, path: str) -> str:
        return path.split("?", 1)[0].strip("/") or "root"

    async def _dispatch(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[int, dict]:
        name = self._endpoint_name(path)
        started = time.perf_counter()
        status, payload = await self._dispatch_inner(
            method, path, headers, body
        )
        elapsed = time.perf_counter() - started
        self.metrics.record(name, status, elapsed)
        self.requests_served += 1
        return status, payload

    async def _dispatch_inner(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[int, dict]:
        route = path.split("?", 1)[0]
        handler = self._routes.get((method, route))
        if handler is None:
            if any(route == known for m, known in self._routes):
                return 405, {
                    "error": f"method {method} not allowed on {route}",
                    "allowed": sorted(
                        m for m, known in self._routes if known == route
                    ),
                }
            return 404, {"error": f"unknown endpoint {route!r}",
                         "endpoints": sorted({r for _, r in self._routes})}
        if route not in ("/healthz", "/stats"):
            tenant = headers.get("x-repro-tenant", "default")
            if not self.limiter.allow(tenant):
                self.metrics.rate_limited += 1
                retry = self.limiter.retry_after(tenant)
                return 429, {
                    "error": (
                        f"tenant {tenant!r} exceeded "
                        f"{self.limiter.rate:g} requests/s "
                        f"(burst {self.limiter.burst})"
                    ),
                    "tenant": tenant,
                    "retry_after_s": round(retry, 4),
                }
        if method == "POST":
            try:
                request = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self.metrics.malformed += 1
                return 400, {"error": f"malformed JSON body: {exc}"}
            if not isinstance(request, dict):
                self.metrics.malformed += 1
                return 400, {
                    "error": "request body must be a JSON object, got "
                    + type(request).__name__
                }
        else:
            request = {}
        try:
            payload = await asyncio.wait_for(
                handler(request), timeout=self.config.timeout_s
            )
            return 200, payload
        except asyncio.TimeoutError:
            self.metrics.timeouts += 1
            return 504, {
                "error": (
                    f"request timed out after {self.config.timeout_s:g}s; "
                    "the derivation continues in the background -- retry "
                    "to pick up the cached result"
                ),
                "timeout_s": self.config.timeout_s,
            }
        except _HttpError as exc:
            return exc.status, {"error": str(exc), **exc.extra}
        except ReproError as exc:
            status = http_status(exc)
            return status, {
                "error": str(exc),
                "type": type(exc).__name__,
            }
        except Exception as exc:  # noqa: BLE001 -- the daemon must survive
            return 500, {
                "error": f"internal error: {exc}",
                "type": type(exc).__name__,
            }

    # -- shared request plumbing -------------------------------------------

    async def _run_blocking(self, fn: Callable, *args: Any) -> Any:
        """Run a CPU-bound stage on the executor (cancellable wait only)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    async def _design_for(self, request: Mapping[str, Any]) -> StoredDesign:
        """Resolve a request's design: by fingerprint or source+design."""
        if "fingerprint" in request and "source" not in request:
            entry = self.store.lookup(request["fingerprint"])
            self.store.hits += 1
            return entry
        if "source" not in request or "design" not in request:
            raise _HttpError(
                400,
                "request must carry either 'fingerprint' or both "
                "'source' and 'design'",
            )
        return await self.store.get_or_compile(
            request["source"], request["design"]
        )

    @staticmethod
    def _sizes_of(request: Mapping[str, Any], key: str = "sizes") -> dict:
        sizes = request.get(key)
        if not isinstance(sizes, Mapping) or not sizes:
            raise _HttpError(
                400,
                f"request field {key!r} must be a non-empty object "
                'of problem sizes, e.g. {"n": 8}',
            )
        try:
            return {str(name): int(value) for name, value in sizes.items()}
        except (TypeError, ValueError):
            raise _HttpError(
                400, f"problem sizes must be integers, got {sizes!r}"
            ) from None

    # -- endpoint handlers --------------------------------------------------

    async def _handle_healthz(self, request: Mapping[str, Any]) -> dict:
        return {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "designs": len(self.store),
            "inflight": self.store.inflight,
            "requests_served": self.requests_served,
        }

    async def _handle_stats(self, request: Mapping[str, Any]) -> dict:
        from repro.core.memo import MEMO
        from repro.target.pygen import MODULE_CACHE

        stats: dict[str, Any] = {
            "service": self.metrics.snapshot(),
            "store": self.store.snapshot(),
            "rate_limiter": self.limiter.snapshot(),
            "memo": MEMO.stats_snapshot(),
            "memo_tables": {
                name: {"hits": h, "misses": m}
                for name, (h, m) in sorted(MEMO.counters_snapshot().items())
            },
            "module_cache": MODULE_CACHE.stats(),
        }
        try:
            from repro.analysis.wavefront import SCHEDULE_CACHE

            stats["wavefront_cache"] = SCHEDULE_CACHE.stats()
        except Exception:  # pragma: no cover -- cache module unavailable
            pass
        try:
            from repro.extensions.partition import PARTITION_CACHE

            stats["partition_cache"] = PARTITION_CACHE.stats()
        except Exception:  # pragma: no cover
            pass
        return stats

    async def _handle_compile(self, request: Mapping[str, Any]) -> dict:
        emit = request.get("emit", "none")
        if emit not in _EMITTERS:
            raise _HttpError(
                400, f"emit must be one of {_EMITTERS}, got {emit!r}"
            )
        cached_before = (
            "fingerprint" in request and "source" not in request
        ) or (
            isinstance(request.get("source"), str)
            and isinstance(request.get("design"), Mapping)
            and self._peek(request) is not None
        )
        entry = await self._design_for(request)
        payload = {
            "fingerprint": entry.fingerprint,
            "name": entry.array.name,
            "summary": await self._run_blocking(entry.summary),
            "cached": bool(cached_before),
        }
        if emit != "none":
            payload["emitted"] = await self._run_blocking(
                self._render, entry, emit
            )
            payload["emit"] = emit
        return payload

    def _peek(self, request: Mapping[str, Any]) -> StoredDesign | None:
        """Non-counting store probe (drives the ``cached`` response bit)."""
        try:
            _, _, fingerprint = self.store.parse_request(
                request["source"], request["design"]
            )
        except ReproError:
            return None
        return self.store.peek(fingerprint)

    @staticmethod
    def _render(entry: StoredDesign, emit: str) -> str:
        from repro.target.build import build_target_program
        from repro.target.cgen import render_c
        from repro.target.occam import render_occam
        from repro.target.pretty import render_paper

        renderer = {
            "paper": render_paper,
            "occam": render_occam,
            "c": render_c,
        }[emit]
        return renderer(build_target_program(entry.systolic))

    async def _handle_execute(self, request: Mapping[str, Any]) -> dict:
        entry = await self._design_for(request)
        env = self._sizes_of(request)
        backend = request.get("backend", "sim")
        seed = int(request.get("seed", 0))
        batch = int(request.get("batch", 1))
        check = bool(request.get("check", True))
        shape = request.get("array")
        if batch < 1:
            raise _HttpError(400, f"batch must be >= 1, got {batch}")
        if shape is not None:
            try:
                shape = tuple(int(s) for s in shape)
            except (TypeError, ValueError):
                raise _HttpError(
                    400, f"array shape must be a list of integers, got {shape!r}"
                ) from None
            if not shape or any(s < 1 for s in shape):
                raise _HttpError(
                    400, f"array shape must be positive, got {list(shape)}"
                )
        result = await self._run_blocking(
            self._execute_design, entry, env, backend, seed, batch, shape, check
        )
        return result

    @staticmethod
    def _execute_design(
        entry: StoredDesign,
        env: dict,
        backend: str,
        seed: int,
        batch: int,
        shape: tuple[int, ...] | None,
        check: bool,
    ) -> dict:
        from repro.lang.interpreter import run_sequential
        from repro.verify.equivalence import (
            BACKENDS,
            _execute_backend,
            random_inputs,
        )

        if backend not in BACKENDS:
            raise _HttpError(
                400, f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        started = time.perf_counter()
        results = []
        mismatched = 0
        for b in range(batch):
            inputs = random_inputs(entry.program, env, seed=seed + b)
            final, _stats = _execute_backend(
                backend, entry.systolic, env, inputs, 1, partition=shape
            )
            if check:
                oracle = run_sequential(entry.program, env, inputs)
                for var, expected in oracle.items():
                    for element, value in expected.items():
                        if final[var].get(tuple(element)) != value:
                            mismatched += 1
            results.append(state_to_json(final))
        elapsed = time.perf_counter() - started
        payload = {
            "fingerprint": entry.fingerprint,
            "backend": backend,
            "sizes": dict(env),
            "batch": batch,
            "elements": sum(len(rows) for rows in results[0].values()),
            "elapsed_s": round(elapsed, 6),
            "results": results,
            "checked": check,
        }
        if shape is not None:
            payload["array"] = list(shape)
        if check:
            payload["matched"] = mismatched == 0
            payload["mismatched_elements"] = mismatched
        return payload

    async def _handle_verify(self, request: Mapping[str, Any]) -> dict:
        entry = await self._design_for(request)
        env = self._sizes_of(request)
        backend = request.get("backend", "sim")
        seed = int(request.get("seed", 0))
        capacity = int(request.get("capacity", 1))
        return await self._run_blocking(
            self._verify_design, entry, env, backend, seed, capacity
        )

    @staticmethod
    def _verify_design(
        entry: StoredDesign, env: dict, backend: str, seed: int, capacity: int
    ) -> dict:
        from repro.verify.equivalence import BACKENDS, verify_design

        if backend not in BACKENDS:
            raise _HttpError(
                400, f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        report = verify_design(
            entry.program,
            entry.array,
            env,
            compiled=entry.systolic,
            seed=seed,
            channel_capacity=capacity,
            backend=backend,
            raise_on_mismatch=False,
        )
        payload = {
            "fingerprint": entry.fingerprint,
            "backend": backend,
            "sizes": dict(env),
            "matched": report.matched,
            "mismatches": report.mismatches[:10],
            "mismatch_count": len(report.mismatches),
        }
        if report.stats is not None:
            payload["makespan"] = report.stats.makespan
            payload["messages"] = report.stats.total_messages
            payload["processes"] = report.stats.process_count
        return payload

    async def _handle_explore(self, request: Mapping[str, Any]) -> dict:
        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            raise _HttpError(
                400, "request field 'source' must be a non-empty string"
            )
        bound = int(request.get("bound", 2))
        limit = int(request.get("limit", 12))
        sizes = request.get("sizes")
        return await self._run_blocking(
            self._explore, source, bound, limit, sizes
        )

    @staticmethod
    def _explore(
        source: str, bound: int, limit: int, sizes: Any
    ) -> dict:
        from repro.lang.parser import parse_program
        from repro.parallel import sweep_designs
        from repro.systolic.schedule import synthesize_step

        program = parse_program(source)
        steps = synthesize_step(program, bound=bound)
        if not steps:
            raise ReproError(
                f"no minimal-makespan step candidate at bound {bound}; "
                "raise 'bound'"
            )
        step = steps[0]
        if sizes is None:
            syms = set(program.size_symbols)
            for lp in program.loops:
                syms |= lp.lower.free_symbols | lp.upper.free_symbols
            envs = [{s: 4 for s in syms}]
        elif isinstance(sizes, Mapping):
            envs = [{str(k): int(v) for k, v in sizes.items()}]
        elif isinstance(sizes, list):
            envs = [{str(k): int(v) for k, v in e.items()} for e in sizes]
        else:
            raise _HttpError(
                400, "'sizes' must be an object or a list of objects"
            )
        result = sweep_designs(
            program, step, envs, bound=1, limit=limit, jobs=1
        )
        t = result.timings
        return {
            "step": [list(r) for r in step.rows],
            "tables": [
                {"sizes": dict(env), "rows": [c.row() for c in costs]}
                for env, costs in result.by_size
            ],
            "timings": {
                "synthesis_s": round(t.synthesis_s, 6),
                "cost_s": round(t.cost_s, 6),
                "total_s": round(t.total_s, 6),
                "candidates": t.candidates,
                "compiled": t.compiled,
            },
        }

    async def _handle_fuzz_replay(self, request: Mapping[str, Any]) -> dict:
        ref = request.get("ref")
        if not isinstance(ref, str) or not ref.strip():
            raise _HttpError(
                400,
                "request field 'ref' must name a corpus reproducer "
                "(digest or file name)",
            )
        corpus_dir = request.get("corpus_dir", self.config.corpus_dir)
        return await self._run_blocking(self._fuzz_replay, ref, corpus_dir)

    @staticmethod
    def _fuzz_replay(ref: str, corpus_dir: str) -> dict:
        from repro.fuzz.corpus import find_reproducer, load_reproducer
        from repro.fuzz.harness import run_instance

        path = find_reproducer(ref, corpus_dir)
        instance, config, data = load_reproducer(path)
        report = run_instance(instance, config)
        return {
            "file": path.name,
            "expect": data.get("expect", "fail"),
            "ok": report.ok,
            "checks_run": list(report.checks_run),
            "failures": [
                {"check": f.check, "message": f.message}
                for f in report.failures
            ],
        }
