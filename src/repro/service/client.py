"""A minimal asyncio JSON client for the compile service.

Used by the in-process test fixture, ``tools/bench_service.py``, and any
script that wants to talk to a running ``repro serve`` daemon without
pulling in an HTTP library.  One client holds one keep-alive connection
(reconnecting transparently when the server closed it); independent
concurrency is achieved by creating several clients.

Every call returns ``(status, payload)`` -- the client never raises on
HTTP-level errors, because the tests exist precisely to assert on them.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping

__all__ = ["ServiceClient"]


class ServiceClient:
    """One keep-alive connection to a compile service daemon."""

    def __init__(
        self, host: str, port: int, *, tenant: str | None = None
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        *,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict]:
        """One round-trip; reconnects once if the kept-alive peer vanished."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._roundtrip(method, path, payload, headers)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                BrokenPipeError,
            ):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _roundtrip(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None,
        headers: Mapping[str, str] | None,
    ) -> tuple[int, dict]:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        if self.tenant is not None:
            lines.append(f"X-Repro-Tenant: {self.tenant}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        return status, (json.loads(raw) if raw else {})

    # -- convenience wrappers ----------------------------------------------

    async def healthz(self) -> tuple[int, dict]:
        return await self.request("GET", "/healthz")

    async def stats(self) -> tuple[int, dict]:
        return await self.request("GET", "/stats")

    async def compile(
        self, source: str | None = None, design: dict | None = None, **extra
    ) -> tuple[int, dict]:
        payload = dict(extra)
        if source is not None:
            payload["source"] = source
        if design is not None:
            payload["design"] = design
        return await self.request("POST", "/compile", payload)

    async def execute(self, **payload) -> tuple[int, dict]:
        return await self.request("POST", "/execute", payload)

    async def verify(self, **payload) -> tuple[int, dict]:
        return await self.request("POST", "/verify", payload)

    async def explore(self, **payload) -> tuple[int, dict]:
        return await self.request("POST", "/explore", payload)

    async def fuzz_replay(self, ref: str, **extra) -> tuple[int, dict]:
        return await self.request(
            "POST", "/fuzz-replay", {"ref": ref, **extra}
        )
