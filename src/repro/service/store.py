"""Content-addressed design store with in-flight request coalescing.

The store is the service's unit of memoization *above* the symbolic core:
each entry is one fully compiled design -- source program, array spec and
the derived ``SystolicProgram`` -- keyed by ``design_fingerprint`` (the
same sha256 the render cache and partition memo key on, computable from
the request before compilation).  Clients may submit ``{source, design}``
pairs or refer back to an earlier compile by bare ``{fingerprint}``.

Coalescing: when K concurrent requests name the same fingerprint and the
design is not cached yet, exactly one compilation runs (on the executor);
the other K-1 await the same future.  The per-table counters of
``repro.core.memo.MEMO`` prove the derivations underneath ran once.

Cancellation safety: callers await the in-flight future through
``asyncio.shield``, so a request timeout abandons the *wait*, never the
compilation -- the executor thread runs to completion and publishes (or
discards, on failure) its result exactly as if no timeout had happened.
Failures are never cached: the next request for the same fingerprint
retries from scratch, mirroring the memo's only-cache-success rule.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.program import SystolicProgram
from repro.core.scheme import compile_systolic
from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.parser import parse_program
from repro.lang.program import SourceProgram
from repro.systolic.spec import SystolicArray
from repro.target.pygen import fingerprint_of
from repro.util.errors import ReproError

__all__ = ["DesignStore", "StoredDesign", "array_from_spec"]

DEFAULT_MAX_DESIGNS = 512


def array_from_spec(data: Mapping[str, Any], *, default_name: str = "design") -> SystolicArray:
    """A :class:`SystolicArray` from the JSON design-spec shape.

    The same document format ``repro compile`` reads from disk and the
    fuzz corpus embeds: ``step`` / ``place`` row lists plus optional
    ``loading`` vectors and ``name``.
    """
    if not isinstance(data, Mapping):
        raise ReproError(f"design spec must be a JSON object, got {type(data).__name__}")
    for field_name in ("step", "place"):
        if field_name not in data:
            raise ReproError(f"design spec is missing the {field_name!r} rows")
    try:
        step = Matrix([tuple(int(c) for c in row) for row in data["step"]])
        place = Matrix([tuple(int(c) for c in row) for row in data["place"]])
        loading = {
            name: Point([int(c) for c in vec])
            for name, vec in (data.get("loading") or {}).items()
        }
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed design spec: {exc}") from None
    return SystolicArray(
        step=step,
        place=place,
        loading_vectors=loading,
        name=str(data.get("name", default_name)),
    )


@dataclass
class StoredDesign:
    """One compiled design, addressable by its content fingerprint."""

    fingerprint: str
    program: SourceProgram
    array: SystolicArray
    systolic: SystolicProgram
    source_text: str
    design_spec: dict = field(default_factory=dict)

    def summary(self) -> str:
        return self.systolic.summary()


class DesignStore:
    """Bounded LRU of compiled designs + coalesced in-flight compiles."""

    def __init__(
        self,
        *,
        executor: Executor | None = None,
        max_designs: int = DEFAULT_MAX_DESIGNS,
    ) -> None:
        if max_designs < 1:
            raise ReproError(f"max_designs must be >= 1, got {max_designs}")
        self._entries: "OrderedDict[str, StoredDesign]" = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        self._executor = executor
        self._max_designs = max_designs
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.failures = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # -- synchronous lookups ------------------------------------------------

    def parse_request(
        self, source_text: str, design_spec: Mapping[str, Any]
    ) -> tuple[SourceProgram, SystolicArray, str]:
        """Parse a ``{source, design}`` request and fingerprint it.

        Raises :class:`ReproError` subclasses (the parser's diagnostics
        pass through untouched) -- the daemon maps those to 4xx.
        """
        if not isinstance(source_text, str) or not source_text.strip():
            raise ReproError("request field 'source' must be a non-empty string")
        program = parse_program(source_text)
        array = array_from_spec(design_spec)
        return program, array, fingerprint_of(program, array)

    def get(self, fingerprint: str) -> StoredDesign | None:
        """The cached design, bumping LRU recency; None when absent."""
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
        return entry

    def peek(self, fingerprint: str) -> StoredDesign | None:
        """Like :meth:`get` without touching recency or counters."""
        return self._entries.get(fingerprint)

    def lookup(self, fingerprint: str) -> StoredDesign:
        """Like :meth:`get` but raising the daemon-facing 4xx error."""
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ReproError("request field 'fingerprint' must be a non-empty string")
        entry = self.get(fingerprint)
        if entry is None:
            raise ReproError(
                f"unknown design fingerprint {fingerprint[:16]!r}...; "
                "compile it first via /compile with source + design"
            )
        return entry

    # -- the coalescing compile path ---------------------------------------

    async def get_or_compile(
        self, source_text: str, design_spec: Mapping[str, Any]
    ) -> StoredDesign:
        """The compiled design for a request, compiling at most once.

        Concurrent callers with the same fingerprint share one in-flight
        compilation; the awaited future is shielded by the caller's
        ``asyncio.wait_for``-based timeout, so cancellation abandons only
        the wait (see module docstring).
        """
        program, array, fingerprint = self.parse_request(source_text, design_spec)
        entry = self.get(fingerprint)
        if entry is not None:
            self.hits += 1
            return entry
        future = self._inflight.get(fingerprint)
        if future is None:
            self.misses += 1
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            # swallow "exception was never retrieved" when every awaiting
            # request timed out before the compile failed
            future.add_done_callback(
                lambda f: None if f.cancelled() else f.exception()
            )
            self._inflight[fingerprint] = future
            asyncio.ensure_future(
                self._compile_into(
                    fingerprint, program, array, source_text, design_spec, future
                )
            )
        else:
            self.coalesced += 1
        return await asyncio.shield(future)

    async def _compile_into(
        self,
        fingerprint: str,
        program: SourceProgram,
        array: SystolicArray,
        source_text: str,
        design_spec: Mapping[str, Any],
        future: asyncio.Future,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            systolic = await loop.run_in_executor(
                self._executor, compile_systolic, program, array
            )
        except BaseException as exc:
            self.failures += 1
            self._inflight.pop(fingerprint, None)
            if not future.cancelled():
                future.set_exception(exc)
            return
        entry = StoredDesign(
            fingerprint=fingerprint,
            program=program,
            array=array,
            systolic=systolic,
            source_text=source_text,
            design_spec=dict(design_spec),
        )
        self._insert(entry)
        self._inflight.pop(fingerprint, None)
        if not future.cancelled():
            future.set_result(entry)

    def _insert(self, entry: StoredDesign) -> None:
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self._max_designs:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop cached designs (in-flight compiles finish undisturbed)."""
        self._entries.clear()
        self.hits = self.misses = self.coalesced = 0
        self.failures = self.evictions = 0

    def snapshot(self) -> dict:
        return {
            "designs": len(self._entries),
            "capacity": self._max_designs,
            "inflight": len(self._inflight),
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "failures": self.failures,
            "evictions": self.evictions,
        }
