"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, Any]], title: str | None = None) -> str:
    """Align a list of homogeneous dict rows into a fixed-width table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).rjust(widths[c]) for c in columns))
    return "\n".join(lines)
