"""Execution analysis: parallelism metrics and report formatting."""

from repro.analysis.metrics import (
    sequential_operation_count,
    synchronous_makespan,
    parallelism_profile,
    ParallelismProfile,
)
from repro.analysis.report import format_table
from repro.analysis.wavefront import (
    synchronous_wavefronts,
    render_wavefront_grid,
    render_wavefront_film,
    activity_histogram,
)

__all__ = [
    "sequential_operation_count",
    "synchronous_makespan",
    "parallelism_profile",
    "ParallelismProfile",
    "format_table",
    "synchronous_wavefronts",
    "render_wavefront_grid",
    "render_wavefront_film",
    "activity_histogram",
]
