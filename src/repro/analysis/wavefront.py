"""Execution wavefronts: text visualisation and the vectorized schedule.

Two layers share the same mathematics (group the index space by
``step . x``):

* **Visualisation** -- :func:`synchronous_wavefronts` and the ASCII
  renderers show which processes of a 1-d/2-d array execute a basic
  statement at each step, like the paper's own figures would have.
* **The wavefront schedule** -- :func:`wavefront_schedule` emits the same
  grouping as packed integer arrays: for every logical time step, the
  active index points, the active cells of ``PS``, and one precomputed
  *gather/scatter index map* per stream (the affine index map ``M . x``
  lowered to flat positions in the variable's dense storage).  This is the
  execution plan of the vectorized NumPy backend
  (:mod:`repro.target.npgen`): Kahn determinism plus the dependence-respect
  check (``step`` strictly increases along every dependence) guarantee that
  all statements of one wavefront are independent, so each step can run as
  one batched array operation.  Schedules are cached per
  ``(design_fingerprint, problem size)`` in a bounded LRU, mirroring the
  pygen render cache, so sweeps and batch executions amortize the build.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.geometry.point import Point
from repro.runtime.trace import Trace
from repro.symbolic.affine import Numeric
from repro.util import env_int, require_numpy
from repro.util.errors import CompilationError, ReproError


def synchronous_wavefronts(
    sp: SystolicProgram, env: Mapping[str, Numeric]
) -> dict[int, list[Point]]:
    """step value -> processes executing a basic statement at that step."""
    out: dict[int, list[Point]] = defaultdict(list)
    for x in sp.source.index_space(env):
        out[int(sp.array.step_of(x))].append(sp.array.place_of(x))
    return {k: sorted(v) for k, v in sorted(out.items())}


def render_wavefront_grid(
    sp: SystolicProgram, env: Mapping[str, Numeric], step: int
) -> str:
    """An ASCII picture of a 1-d or 2-d process space at one step.

    ``#`` executes a basic statement at this step, ``.`` is idle
    computation space, `` `` (blank) is outside the computation space.
    """
    dim = len(sp.coords)
    if dim not in (1, 2):
        raise ReproError(f"can only draw 1-d or 2-d process spaces, got {dim}-d")
    active = set(synchronous_wavefronts(sp, env).get(step, []))
    space = sp.process_space(env)
    lines: list[str] = []
    if dim == 1:
        row_chars = []
        for c in range(int(space.lo[0]), int(space.hi[0]) + 1):
            y = Point.of(c)
            if y in active:
                row_chars.append("#")
            elif sp.in_computation_space(y, env):
                row_chars.append(".")
            else:
                row_chars.append(" ")
        lines.append("".join(row_chars))
    else:
        for r in range(int(space.hi[1]), int(space.lo[1]) - 1, -1):
            row_chars = []
            for c in range(int(space.lo[0]), int(space.hi[0]) + 1):
                y = Point.of(c, r)
                if y in active:
                    row_chars.append("#")
                elif sp.in_computation_space(y, env):
                    row_chars.append(".")
                else:
                    row_chars.append(" ")
            lines.append("".join(row_chars))
    return "\n".join(lines)


def render_wavefront_film(
    sp: SystolicProgram, env: Mapping[str, Numeric], *, max_frames: int = 6
) -> str:
    """Several consecutive wavefront frames, labelled by step number.

    When there are more steps than frames the film is stride-sampled, but
    the final wavefront is always shown: the last frame is pinned to the
    last step, so the film never cuts off before the computation ends.
    """
    fronts = synchronous_wavefronts(sp, env)
    steps = list(fronts)
    if len(steps) > max_frames:
        stride = max(1, len(steps) // max_frames)
        sampled = steps[::stride][:max_frames]
        sampled[-1] = steps[-1]
        steps = sampled
    blocks = []
    for s in steps:
        blocks.append(f"step {s}:")
        blocks.append(render_wavefront_grid(sp, env, s))
    return "\n".join(blocks)


# ----------------------------------------------------------------------
# the size-parameterized wavefront schedule (vectorized execution plan)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VariableLayout:
    """Dense row-major storage layout of one variable space ``VS.v``."""

    name: str
    lo: tuple[int, ...]
    shape: tuple[int, ...]
    strides: tuple[int, ...]
    size: int

    def linear(self, point) -> int:
        """Flat position of an element point (tuple-like) in the storage."""
        return sum(
            (int(c) - l) * s for c, l, s in zip(point, self.lo, self.strides)
        )


@dataclass(frozen=True)
class WavefrontStep:
    """Everything one logical time step needs to execute as array ops.

    ``points`` is the ``(r, W)`` matrix of active index points, ``cells``
    the ``((r-1), W)`` matrix of active ``PS`` cells (the wavefront
    picture), and ``gather[name]`` the ``(W,)`` flat positions of the
    element each statement reads/writes in stream ``name``'s dense storage
    -- the same array serves gather (inputs) and scatter (outputs).
    """

    t: int
    points: object  # np.ndarray (r, W) int64
    cells: object  # np.ndarray (r-1, W) int64
    gather: Mapping[str, object]  # name -> np.ndarray (W,) int64

    @property
    def width(self) -> int:
        return int(self.points.shape[1])


@dataclass
class WavefrontSchedule:
    """The complete vectorized execution plan of a design at one size.

    Built once per ``(design fingerprint, problem size)`` and cached; the
    NumPy backend attaches its compiled per-dtype body plans under
    ``runtime_cache`` so repeated (and batched) executions reuse both the
    geometry and the lowered basic statement.
    """

    fingerprint: str
    sizes: tuple[tuple[str, int], ...]
    coords: tuple[str, ...]
    indices: tuple[str, ...]
    layouts: dict[str, VariableLayout]
    streams_read: tuple[str, ...]
    streams_written: tuple[str, ...]
    steps: tuple[WavefrontStep, ...]
    total_points: int
    #: backend-owned memo (e.g. compiled body plans per dtype)
    runtime_cache: dict = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def max_width(self) -> int:
        return max((s.width for s in self.steps), default=0)

    def env_of(self) -> dict[str, int]:
        return dict(self.sizes)


def _layout_of(variable, env) -> VariableLayout:
    space = variable.space(env)
    lo = tuple(int(c) for c in space.lo)
    hi = tuple(int(c) for c in space.hi)
    shape = tuple(h - l + 1 for l, h in zip(lo, hi))
    strides = [1] * len(shape)
    for axis in range(len(shape) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * shape[axis + 1]
    return VariableLayout(
        name=variable.name,
        lo=lo,
        shape=shape,
        strides=tuple(strides),
        size=space.size,
    )


def build_wavefront_schedule(
    sp: SystolicProgram, env: Mapping[str, Numeric]
) -> WavefrontSchedule:
    """Group the whole index space by ``step . x`` into packed arrays.

    Pure construction (no caching); most callers want
    :func:`wavefront_schedule`.  Raises :class:`CompilationError` when two
    statements of one wavefront would touch the same element of a written
    stream -- impossible for designs that pass the dependence-respect
    check, so hitting it means the design (or this scheduler) is broken.
    """
    np = require_numpy("the wavefront schedule")
    sizes = tuple(sorted((k, int(v)) for k, v in env.items()))
    ienv = dict(sizes)
    source = sp.source

    lo = [lp.lower.evaluate_int(ienv) for lp in source.loops]
    hi = [lp.upper.evaluate_int(ienv) for lp in source.loops]
    if any(l > h for l, h in zip(lo, hi)):
        raise CompilationError(
            f"empty loop range at size {ienv}: {list(zip(lo, hi))}"
        )
    extents = tuple(h - l + 1 for l, h in zip(lo, hi))
    r = len(extents)

    # (r, N) matrix of every index point, then the wavefront order.
    x = np.indices(extents, dtype=np.int64).reshape(r, -1)
    x += np.asarray(lo, dtype=np.int64)[:, None]
    step_row = np.asarray(
        [int(c) for c in sp.array.step.rows[0]], dtype=np.int64
    )
    t = step_row @ x
    order = np.argsort(t, kind="stable")
    x = x[:, order]
    t = t[order]

    place_rows = np.asarray(
        [[int(c) for c in row] for row in sp.array.place.rows], dtype=np.int64
    )
    cells = place_rows @ x

    layouts = {v.name: _layout_of(v, ienv) for v in source.variables}
    written = tuple(sorted(source.body.streams_written()))
    read = tuple(sorted(source.body.streams_read()))

    gathers: dict[str, object] = {}
    for s in source.streams:
        layout = layouts[s.name]
        rows = np.asarray(
            [[int(c) for c in row] for row in s.index_map.rows], dtype=np.int64
        )
        elements = rows @ x  # (dim, N)
        flat = np.zeros(elements.shape[1], dtype=np.int64)
        for axis in range(elements.shape[0]):
            coords = elements[axis]
            low, high = int(coords.min()), int(coords.max())
            if low < layout.lo[axis] or high > layout.lo[axis] + layout.shape[axis] - 1:
                raise CompilationError(
                    f"stream {s.name}: accessed elements [{low}, {high}] fall "
                    f"outside the variable space on axis {axis} at size {ienv}"
                )
            flat += (coords - layout.lo[axis]) * layout.strides[axis]
        gathers[s.name] = flat

    # Cut the sorted arrays into per-step views.
    uniq, starts = np.unique(t, return_index=True)
    bounds = list(starts) + [t.shape[0]]
    steps = []
    for i, tv in enumerate(uniq):
        a, b = bounds[i], bounds[i + 1]
        gather = {name: g[a:b] for name, g in gathers.items()}
        for name in written:
            idx = gather[name]
            if np.unique(idx).shape[0] != idx.shape[0]:
                raise CompilationError(
                    f"wavefront t={int(tv)} touches an element of written "
                    f"stream {name} twice: the design violates dependence "
                    "respect (step must separate same-element accesses)"
                )
        steps.append(
            WavefrontStep(
                t=int(tv), points=x[:, a:b], cells=cells[:, a:b], gather=gather
            )
        )

    from repro.target.pygen import design_fingerprint  # lazy: import cycle

    return WavefrontSchedule(
        fingerprint=design_fingerprint(sp),
        sizes=sizes,
        coords=tuple(sp.coords),
        indices=tuple(source.indices),
        layouts=layouts,
        streams_read=read,
        streams_written=written,
        steps=tuple(steps),
        total_points=int(x.shape[1]),
    )


DEFAULT_SCHEDULE_CACHE_SIZE = 32


class ScheduleCache:
    """Bounded LRU of wavefront schedules keyed by (fingerprint, sizes).

    Shared by the compile service's executor threads: the LRU structure is
    mutated only under one lock; a missed schedule is built outside it (a
    racing duplicate build is benign -- the schedules are equal and one
    wins).
    """

    def __init__(self, capacity: int = DEFAULT_SCHEDULE_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self._entries: "OrderedDict[tuple, WavefrontSchedule]" = OrderedDict()
        self._capacity = capacity
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def schedule_for(
        self, sp: SystolicProgram, env: Mapping[str, Numeric]
    ) -> WavefrontSchedule:
        from repro.target.pygen import design_fingerprint  # lazy: import cycle

        key = (
            design_fingerprint(sp),
            tuple(sorted((k, int(v)) for k, v in env.items())),
        )
        with self._lock:
            schedule = self._entries.get(key)
            if schedule is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return schedule
            self.misses += 1
        schedule = build_wavefront_schedule(sp, env)
        with self._lock:
            self._entries[key] = schedule
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return schedule

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self._capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


SCHEDULE_CACHE = ScheduleCache(
    capacity=env_int(
        "REPRO_WAVEFRONT_CACHE_SIZE", DEFAULT_SCHEDULE_CACHE_SIZE, minimum=1
    )
)


def wavefront_schedule(
    sp: SystolicProgram, env: Mapping[str, Numeric], *, use_cache: bool = True
) -> WavefrontSchedule:
    """The (cached) vectorized execution plan of ``sp`` at size ``env``."""
    if not use_cache:
        return build_wavefront_schedule(sp, env)
    return SCHEDULE_CACHE.schedule_for(sp, env)


def activity_histogram(trace: Trace, *, width: int = 60, bins: int = 20) -> str:
    """Events per virtual-time bin, as an ASCII bar chart."""
    if not trace.events:
        return "(no events)"
    span = max(1, trace.makespan)
    counts = [0] * bins
    for e in trace.events:
        idx = min(bins - 1, (e.clock - 1) * bins // span)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * (c * width // peak if peak else 0)
        lo = i * span // bins
        lines.append(f"t={lo:>4} |{bar} {c}")
    return "\n".join(lines)
