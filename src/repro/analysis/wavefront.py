"""Text visualisation of execution wavefronts.

Renders (a) the synchronous wavefront of a design -- which processes of a
2-d array execute a basic statement at each step, computed exactly from
``step``/``place`` -- and (b) an activity histogram over virtual time from
a runtime trace.  Both are plain text so they live happily in terminals,
logs and docstrings, like the paper's own figures would have.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.geometry.point import Point
from repro.runtime.trace import Trace
from repro.symbolic.affine import Numeric
from repro.util.errors import ReproError


def synchronous_wavefronts(
    sp: SystolicProgram, env: Mapping[str, Numeric]
) -> dict[int, list[Point]]:
    """step value -> processes executing a basic statement at that step."""
    out: dict[int, list[Point]] = defaultdict(list)
    for x in sp.source.index_space(env):
        out[int(sp.array.step_of(x))].append(sp.array.place_of(x))
    return {k: sorted(v) for k, v in sorted(out.items())}


def render_wavefront_grid(
    sp: SystolicProgram, env: Mapping[str, Numeric], step: int
) -> str:
    """An ASCII picture of a 1-d or 2-d process space at one step.

    ``#`` executes a basic statement at this step, ``.`` is idle
    computation space, `` `` (blank) is outside the computation space.
    """
    dim = len(sp.coords)
    if dim not in (1, 2):
        raise ReproError(f"can only draw 1-d or 2-d process spaces, got {dim}-d")
    active = set(synchronous_wavefronts(sp, env).get(step, []))
    space = sp.process_space(env)
    lines: list[str] = []
    if dim == 1:
        row_chars = []
        for c in range(int(space.lo[0]), int(space.hi[0]) + 1):
            y = Point.of(c)
            if y in active:
                row_chars.append("#")
            elif sp.in_computation_space(y, env):
                row_chars.append(".")
            else:
                row_chars.append(" ")
        lines.append("".join(row_chars))
    else:
        for r in range(int(space.hi[1]), int(space.lo[1]) - 1, -1):
            row_chars = []
            for c in range(int(space.lo[0]), int(space.hi[0]) + 1):
                y = Point.of(c, r)
                if y in active:
                    row_chars.append("#")
                elif sp.in_computation_space(y, env):
                    row_chars.append(".")
                else:
                    row_chars.append(" ")
            lines.append("".join(row_chars))
    return "\n".join(lines)


def render_wavefront_film(
    sp: SystolicProgram, env: Mapping[str, Numeric], *, max_frames: int = 6
) -> str:
    """Several consecutive wavefront frames, labelled by step number."""
    fronts = synchronous_wavefronts(sp, env)
    steps = list(fronts)
    if len(steps) > max_frames:
        stride = max(1, len(steps) // max_frames)
        steps = steps[::stride][:max_frames]
    blocks = []
    for s in steps:
        blocks.append(f"step {s}:")
        blocks.append(render_wavefront_grid(sp, env, s))
    return "\n".join(blocks)


def activity_histogram(trace: Trace, *, width: int = 60, bins: int = 20) -> str:
    """Events per virtual-time bin, as an ASCII bar chart."""
    if not trace.events:
        return "(no events)"
    span = max(1, trace.makespan)
    counts = [0] * bins
    for e in trace.events:
        idx = min(bins - 1, (e.clock - 1) * bins // span)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * (c * width // peak if peak else 0)
        lo = i * span // bins
        lines.append(f"t={lo:>4} |{bar} {c}")
    return "\n".join(lines)
