"""Parallelism metrics.

The paper's claim is qualitative: systolic programs extract the optimal
parallelism the ``step`` function encodes.  These metrics quantify that on
the simulator:

* **sequential operation count** -- ``|IS|``: the work a single processor
  performs;
* **synchronous makespan** -- the span of ``step`` over the index space:
  the execution time of the ideal synchronous array;
* **observed makespan** -- the simulator's virtual-time critical path,
  which adds the i/o fill/drain of the pipelines;
* **speedup / efficiency** -- sequential work over observed makespan, raw
  and per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.lang.program import SourceProgram
from repro.runtime.scheduler import SchedulerStats
from repro.symbolic.affine import Numeric
from repro.systolic.spec import SystolicArray


def sequential_operation_count(
    program: SourceProgram, env: Mapping[str, Numeric]
) -> int:
    """``|IS|``: the number of basic statements executed sequentially."""
    return program.index_space(env).size


def synchronous_makespan(
    program: SourceProgram, array: SystolicArray, env: Mapping[str, Numeric]
) -> int:
    """``max step - min step + 1`` over the index space (corners suffice)."""
    corners = list(program.index_space(env).corners())
    values = [array.step_of(c) for c in corners]
    return int(max(values) - min(values)) + 1


@dataclass(frozen=True)
class ParallelismProfile:
    """One row of the parallelism benchmark."""

    env: dict
    sequential_ops: int
    synchronous_makespan: int
    observed_makespan: int
    processes: int
    messages: int

    @property
    def speedup(self) -> float:
        """Sequential work over the observed critical path."""
        return self.sequential_ops / max(1, self.observed_makespan)

    @property
    def efficiency(self) -> float:
        """Speedup per process (1.0 = perfectly busy array)."""
        return self.speedup / max(1, self.processes)

    def row(self) -> dict:
        return {
            **self.env,
            "seq_ops": self.sequential_ops,
            "sync_makespan": self.synchronous_makespan,
            "observed_makespan": self.observed_makespan,
            "processes": self.processes,
            "messages": self.messages,
            "speedup": round(self.speedup, 2),
            "efficiency": round(self.efficiency, 3),
        }


def parallelism_profile(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    stats: SchedulerStats,
) -> ParallelismProfile:
    """Combine static and simulated metrics for one execution."""
    return ParallelismProfile(
        env=dict(env),
        sequential_ops=sequential_operation_count(sp.source, env),
        synchronous_makespan=synchronous_makespan(sp.source, sp.array, env),
        observed_makespan=stats.makespan,
        processes=stats.process_count,
        messages=stats.total_messages,
    )
