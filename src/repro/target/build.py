"""Lowering a :class:`~repro.core.program.SystolicProgram` to the abstract
target syntax (Appendix C).

This is a pure re-arrangement: every symbolic closed form the scheme derived
(first/last/count, soak/drain, the i/o repeaters, Eq. 10 pass amounts) is
placed into the process structure of the paper's generated programs.  The
renderers then only have to walk the structure.
"""

from __future__ import annotations

from repro.core.program import SystolicProgram
from repro.target.ast import (
    BufferProcess,
    ChannelDecl,
    ComputeLoop,
    ComputeProcess,
    DrainPhase,
    IOProcess,
    LoadPhase,
    RecoverPhase,
    SoakPhase,
    TargetProgram,
    TargetRepeater,
)


def build_target_program(sp: SystolicProgram) -> TargetProgram:
    """Arrange the compiled closed forms into the abstract target program."""
    stationary = [p for p in sp.streams if p.stationary]
    moving = [p for p in sp.streams if not p.stationary]

    phases: list = []
    # pre phase: stationary loads (receive + loading passes = drain), then
    # moving soaks, both in stream declaration order -- exactly the order
    # the runtime's compute processes execute (repro.runtime.network).
    for p in stationary:
        phases.append(LoadPhase(p.name, p.drain))
    for p in moving:
        phases.append(SoakPhase(p.name, p.soak))
    phases.append(
        ComputeLoop(
            repeater=TargetRepeater(sp.first, sp.last, sp.increment),
            recv_streams=tuple(p.name for p in moving),
            send_streams=tuple(p.name for p in moving),
            body=sp.source.body,
            indices=sp.source.indices,
        )
    )
    # post phase: moving drains, then stationary recoveries (soak passes
    # followed by the resident element).
    for p in moving:
        phases.append(DrainPhase(p.name, p.drain))
    for p in stationary:
        phases.append(RecoverPhase(p.name, p.soak))

    channels = tuple(
        ChannelDecl(p.name, p.hop, p.stationary, p.internal_buffers())
        for p in sp.streams
    )
    io_in = tuple(
        IOProcess(p.name, "in", TargetRepeater(p.first_s, p.last_s, p.increment_s))
        for p in sp.streams
    )
    io_out = tuple(
        IOProcess(p.name, "out", TargetRepeater(p.first_s, p.last_s, p.increment_s))
        for p in sp.streams
    )
    buffer = BufferProcess(tuple((p.name, p.pass_amount) for p in sp.streams))

    sizes = tuple(
        sorted(
            frozenset(sp.source.size_symbols)
            | (sp.first.free_symbols - frozenset(sp.coords))
        )
    )
    return TargetProgram(
        name=sp.source.name,
        array_name=sp.array.name,
        coords=sp.coords,
        sizes=sizes,
        ps_min=sp.ps_min,
        ps_max=sp.ps_max,
        channels=channels,
        compute=ComputeProcess(sp.coords, tuple(phases)),
        inputs=io_in,
        outputs=io_out,
        buffer=buffer,
    )
