"""Rendering the abstract target program as C with channel directives.

The 1991 authors' second hand translation targeted C with communication
directives on the Symult s2010; this renderer produces the same flavour
mechanically.  Unlike the occam renderer it lowers every scalar closed form
(count, soak, drain, Eq. 10) *and* every component of the repeater start
points into guarded flat C functions, so the emitted file is complete
modulo the channel primitives (``chan_send`` / ``chan_recv``), which the
target machine's communication library provides.
"""

from __future__ import annotations

from fractions import Fraction

from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.piecewise import Piecewise
from repro.target.ast import (
    ComputeLoop,
    DrainPhase,
    LoadPhase,
    RecoverPhase,
    SoakPhase,
    TargetProgram,
)
from repro.target.pretty import format_repeater


def _c_num(value) -> str:
    if value.denominator == 1:
        return str(int(value))
    return f"{value.numerator}/{value.denominator}"


def _c_affine(a: Affine) -> str:
    parts = []
    for sym in sorted(a.coeffs):
        c = a.coeffs[sym]
        if c == 1:
            parts.append(sym)
        elif c.denominator == 1:
            parts.append(f"{int(c)}*{sym}")
        else:
            parts.append(f"{c.numerator}*{sym}/{c.denominator}")
    if a.const != 0 or not parts:
        parts.append(_c_num(a.const))
    return " + ".join(parts)


def _c_guard(guard) -> str:
    if guard.is_true:
        return "1"
    return " && ".join(f"({_c_affine(c.expr)}) >= 0" for c in guard.constraints)


def _c_scalar_fn(name: str, pw, params: str) -> list[str]:
    """A flat guarded C function for a scalar piecewise closed form."""
    lines = [f"static long {name}({params}) {{"]
    lines.extend(_c_scalar_body(pw, 1))
    lines.append("}")
    return lines


def _c_scalar_body(value, depth: int) -> list[str]:
    pad = "    " * depth
    if value is None:
        return [f"{pad}return NULLV;"]
    if isinstance(value, Affine):
        return [f"{pad}return {_c_affine(value)};"]
    if not isinstance(value, Piecewise):  # plain number
        return [f"{pad}return {_c_num(value)};"]
    out: list[str] = []
    for case in value.cases:
        out.append(f"{pad}if ({_c_guard(case.guard)}) {{")
        out.extend(_c_scalar_body(case.value, depth + 1))
        out.append(f"{pad}}}")
    if value.has_default:
        out.extend(_c_scalar_body(value.default, depth))
    else:
        out.append(f"{pad}return NULLV; /* no alternative holds */")
    return out


def _c_vec_fns(prefix: str, pw, dim: int, params: str) -> list[str]:
    """Per-component functions for a piecewise affine-vector closed form."""
    lines: list[str] = []
    for axis in range(dim):
        component = pw.map_values(
            lambda v, axis=axis: None if v is None else v[axis]
        )
        lines.extend(_c_scalar_fn(f"{prefix}_{axis}", component, params))
    return lines


def _c_expr(expr) -> str:
    from repro.lang.expr import BinOp, Const, IndexExpr, StreamRead

    if isinstance(expr, Const):
        return _c_num(expr.value) if hasattr(expr.value, "denominator") else str(expr.value)
    if isinstance(expr, StreamRead):
        return f"v_{expr.name}"
    if isinstance(expr, IndexExpr):
        return f"({_c_affine(expr.affine)})"
    if isinstance(expr, BinOp):
        left, right = _c_expr(expr.left), _c_expr(expr.right)
        if expr.op == "min":
            return f"(({left}) < ({right}) ? ({left}) : ({right}))"
        if expr.op == "max":
            return f"(({left}) > ({right}) ? ({left}) : ({right}))"
        return f"({left} {expr.op} {right})"
    raise TypeError(f"cannot render {expr!r}")


def render_c(tp: TargetProgram) -> str:
    coords = tp.coords
    sizes = tp.sizes
    params = ", ".join(f"long {v}" for v in (*coords, *sizes))
    args = ", ".join((*coords, *sizes))
    streams = tp.stream_names

    lines: list[str] = [
        f"/* C + channel-directive flavour of '{tp.name}' on array "
        f"'{tp.array_name}'.",
        f" * process space PS: ({', '.join(str(a) for a in tp.ps_min)}) .. "
        f"({', '.join(str(a) for a in tp.ps_max)})",
        " * chan_send/chan_recv are the target machine's channel directives.",
        " */",
        "#include <limits.h>",
        "",
        "typedef long value_t;",
        "typedef struct channel Channel;",
        "extern value_t chan_recv(Channel *c);",
        "extern void chan_send(Channel *c, value_t v);",
        "#define NULLV LONG_MIN  /* the paper's 'null' */",
        "",
        "/* ---- closed forms, lowered from the piecewise-affine layer ---- */",
    ]
    loop = next(p for p in tp.compute.phases if isinstance(p, ComputeLoop))
    lines.extend(_c_scalar_fn("count_steps", _count_of(loop), params))
    lines.extend(
        _c_vec_fns("first", loop.repeater.first, len(loop.indices), params)
    )
    for phase in tp.compute.phases:
        if isinstance(phase, LoadPhase):
            lines.extend(_c_scalar_fn(f"{phase.stream}_load_passes", phase.passes, params))
        elif isinstance(phase, SoakPhase):
            lines.extend(_c_scalar_fn(f"{phase.stream}_soak", phase.amount, params))
        elif isinstance(phase, DrainPhase):
            lines.extend(_c_scalar_fn(f"{phase.stream}_drain", phase.amount, params))
        elif isinstance(phase, RecoverPhase):
            lines.extend(_c_scalar_fn(f"{phase.stream}_recover_passes", phase.passes, params))
    for stream, amount in tp.buffer.passes:
        lines.extend(_c_scalar_fn(f"{stream}_pass_amount", amount, params))
    lines.append("")
    lines.append("static long amt(long v) { return v == NULLV ? 0 : v; }")
    lines.append("")
    lines.append("static void pass_elems(long count, Channel *in, Channel *out) {")
    lines.append("    for (long k = 0; k < count; ++k) chan_send(out, chan_recv(in));")
    lines.append("}")
    lines.append("")
    # ---------------------------------------------------------- compute --
    chan_params = ", ".join(f"Channel *{s}_in, Channel *{s}_out" for s in streams)
    lines.append(f"void compute({params}, {chan_params}) {{")
    decls = ", ".join(f"v_{s}" for s in streams)
    lines.append(f"    value_t {decls};")
    for phase in tp.compute.phases:
        lines.extend(_c_phase(phase, args))
    lines.append("}")
    lines.append("")
    # --------------------------------------------------------------- i/o --
    for io in tp.inputs:
        s = io.stream
        lines.append(f"/* feeds a pipe head; repeater {format_repeater(io.repeater)} */")
        lines.append(
            f"void input_{s}({params}, long count, Channel *out,"
            " value_t (*next)(long)) {"
        )
        lines.append("    for (long k = 0; k < count; ++k) chan_send(out, next(k));")
        lines.append("}")
    for io in tp.outputs:
        s = io.stream
        lines.append(f"/* drains a pipe tail; repeater {format_repeater(io.repeater)} */")
        lines.append(
            f"void output_{s}({params}, long count, Channel *in,"
            " void (*store)(long, value_t)) {"
        )
        lines.append("    for (long k = 0; k < count; ++k) store(k, chan_recv(in));")
        lines.append("}")
    lines.append("")
    # ------------------------------------------------------------ buffer --
    buf_chans = ", ".join(
        f"Channel *{s}_in, Channel *{s}_out" for s, _ in tp.buffer.passes
    )
    lines.append(f"/* PS \\ CS: Eq. 10 pass loops, conceptually parallel */")
    lines.append(f"void buffer_node({params}, {buf_chans}) {{")
    for stream, _ in tp.buffer.passes:
        lines.append(
            f"    pass_elems(amt({stream}_pass_amount({args})),"
            f" {stream}_in, {stream}_out);"
        )
    lines.append("}")
    return "\n".join(lines)


def _count_of(loop: ComputeLoop):
    """The step count (Eq. 4) -- recovered as ((last - first) // inc) + 1
    is already folded into the compiled program's ``count``; the target AST
    carries first/last, so derive a scalar from the non-null axis."""
    # Use the first axis with a non-zero increment to express the count.
    inc = loop.repeater.increment
    axis = next(i for i, c in enumerate(inc) if c != 0)
    step = inc[axis]

    def scalarize(first_v, last_v):
        if first_v is None or last_v is None:
            return None
        return (last_v[axis] - first_v[axis]) * Fraction(1, int(step)) + 1

    first, last = loop.repeater.first, loop.repeater.last

    def map_first(fv):
        if fv is None:
            return None
        return last.map_values(lambda lv: scalarize(fv, lv))

    return first.map_values(map_first)


def _c_phase(phase, args: str) -> list[str]:
    pad = "    "
    if isinstance(phase, LoadPhase):
        s = phase.stream
        return [
            f"{pad}/* load {s}, then forward the loading passes */",
            f"{pad}v_{s} = chan_recv({s}_in);",
            f"{pad}pass_elems(amt({s}_load_passes({args})), {s}_in, {s}_out);",
        ]
    if isinstance(phase, SoakPhase):
        s = phase.stream
        return [f"{pad}pass_elems(amt({s}_soak({args})), {s}_in, {s}_out);"]
    if isinstance(phase, ComputeLoop):
        out = [f"{pad}/* repeater {format_repeater(phase.repeater)} */"]
        for axis, name in enumerate(phase.indices):
            out.append(f"{pad}long {name} = first_{axis}({args});")
        out.append(f"{pad}long steps = count_steps({args});")
        out.append(f"{pad}for (long k = 0; k < steps; ++k) {{")
        inner = f"{pad}    "
        for s in phase.recv_streams:
            out.append(f"{inner}v_{s} = chan_recv({s}_in);")
        for branch in phase.body.branches:
            stmts = [f"v_{a.stream} = {_c_expr(a.expr)};" for a in branch.assigns]
            if branch.condition is None:
                out.extend(f"{inner}{s}" for s in stmts)
            else:
                cond = branch.condition
                rel = cond.relation
                out.append(f"{inner}if (({_c_affine(cond.affine)}) {rel} 0) {{")
                out.extend(f"{inner}    {s}" for s in stmts)
                out.append(f"{inner}}}")
        for s in phase.send_streams:
            out.append(f"{inner}chan_send({s}_out, v_{s});")
        for axis, name in enumerate(phase.indices):
            inc = phase.repeater.increment[axis]
            if inc != 0:
                out.append(f"{inner}{name} += {inc};")
        out.append(f"{pad}}}")
        return out
    if isinstance(phase, DrainPhase):
        s = phase.stream
        return [f"{pad}pass_elems(amt({s}_drain({args})), {s}_in, {s}_out);"]
    if isinstance(phase, RecoverPhase):
        s = phase.stream
        return [
            f"{pad}pass_elems(amt({s}_recover_passes({args})), {s}_in, {s}_out);",
            f"{pad}chan_send({s}_out, v_{s});",
        ]
    raise TypeError(f"unknown phase {phase!r}")
