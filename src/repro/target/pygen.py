"""The executable Python backend: compile a systolic program to a
standalone, stdlib-only Python module and run it.

:func:`render_python` lowers *every* symbolic quantity of the compiled
program -- ``first``/``count``, ``soak``/``drain``, the i/o repeaters
``{first_s last_s increment_s}``, and the Eq. 8-10 amounts -- from the
piecewise-affine layer into guarded flat Python functions (plain ``if``
chains of ``(affine) >= 0`` tests), and appends a fixed runtime harness.
The emitted module offers two engines over the same process network:

* ``run(sizes, inputs)`` -- a fast cooperative engine: every process is a
  generator that yields the channel it wants to receive from; channels are
  unbounded FIFOs.  No per-message scheduler bookkeeping, no Lamport
  clocks -- this is the compiled fast path.
* ``run_threaded(sizes, inputs)`` -- the paper's target model: one thread
  per process, bounded queues as channels (transputer-style rendezvous
  approximated by ``queue.Queue(maxsize=1)``).

Both engines execute the *same* generator processes and are bit-for-bit
equal to the coroutine simulator and to the sequential oracle: the network
is a Kahn process network (single producer and single consumer per
channel), so results depend only on the per-channel FIFO sequences, never
on scheduling or capacities -- the capacity-invariance property the test
suite asserts for the simulator.

:func:`execute_python` renders, compiles (with a per-source cache), and
runs the module on dense inputs, returning tuple-keyed final contents.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from fractions import Fraction
from pathlib import Path
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.lang.expr import Affine, BinOp, Body, Const, IndexExpr, StreamRead
from repro.lang.interpreter import initial_state
from repro.symbolic.affine import AffineVec
from repro.symbolic.compile import guard_chain_lines, render_affine, render_guard
from repro.symbolic.minmax import render_bound
from repro.symbolic.piecewise import Piecewise
from repro.util import env_int
from repro.util.errors import CompilationError


def _no_match_line(pad: str) -> str:
    return f"{pad}raise ValueError('no alternative holds for %r' % (env,))"


class _PyRenderer:
    """Symbolic layer -> flat Python source, tracking the Fraction need.

    The affine/guard/guard-chain lowering itself is the shared
    implementation in :mod:`repro.symbolic.compile`; this class only
    supplies the numeral renderer (which tracks whether the emitted module
    needs ``Fraction``) and the statement-level glue.
    """

    def __init__(self) -> None:
        self.needs_fraction = False

    # ------------------------------------------------------------------
    def num(self, value) -> str:
        f = Fraction(value)
        if f.denominator == 1:
            return str(int(f))
        self.needs_fraction = True
        return f"_Fr({f.numerator}, {f.denominator})"

    def affine(self, a: Affine) -> str:
        return render_affine(a, self.num)

    def bound(self, b) -> str:
        # Plain affines render exactly as before; extremum bounds become
        # the min()/max() builtins, so the module needs no extra runtime.
        return render_bound(b, self.affine)

    def guard(self, guard) -> str:
        return render_guard(guard, self.num)

    # ------------------------------------------------------------------
    def scalar_leaf(self, value) -> str:
        if value is None:
            return "None"
        if isinstance(value, Affine):
            return self.affine(value)
        return self.num(value)

    def vector_leaf(self, value) -> str:
        if value is None:
            return "None"
        if not isinstance(value, AffineVec):
            raise CompilationError(f"expected an affine vector, got {value!r}")
        return "(" + ", ".join(self.affine(a) for a in value) + ",)"

    def piecewise_fn(self, name: str, pw: Piecewise, leaf) -> list[str]:
        lines = [f"def {name}(env):"]
        lines.extend(
            guard_chain_lines(pw, leaf, self.guard, _no_match_line, depth=1)
        )
        return lines

    # ------------------------------------------------------------------
    def expr(self, e) -> str:
        if isinstance(e, Const):
            return self.num(e.value) if isinstance(e.value, Fraction) else str(e.value)
        if isinstance(e, StreamRead):
            return f"values[{e.name!r}]"
        if isinstance(e, IndexExpr):
            return f"({self.affine(e.affine)})"
        if isinstance(e, BinOp):
            left, right = self.expr(e.left), self.expr(e.right)
            if e.op in ("min", "max"):
                return f"{e.op}({left}, {right})"
            return f"({left} {e.op} {right})"
        raise CompilationError(f"cannot render {e!r}")

    def body_fn(self, body: Body) -> list[str]:
        lines = ["def _body(values, env):"]
        for branch in body.branches:
            pad = "    "
            if branch.condition is not None:
                cond = branch.condition
                lines.append(
                    f"    if ({self.affine(cond.affine)}) {cond.relation} 0:"
                )
                pad = "        "
            for a in branch.assigns:
                lines.append(f"{pad}values[{a.stream!r}] = {self.expr(a.expr)}")
        lines.append("    return values")
        return lines


def render_python(sp: SystolicProgram) -> str:
    """Emit the complete standalone module as a string."""
    r = _PyRenderer()
    body: list[str] = []

    body.append(f"COORDS = {tuple(sp.coords)!r}")
    body.append(f"INDICES = {tuple(sp.source.indices)!r}")
    body.append(f"INCREMENT = {tuple(int(c) for c in sp.increment)!r}")
    body.append("")
    body.append("def _ps_min(env):")
    body.append("    return (" + ", ".join(r.bound(a) for a in sp.ps_min) + ",)")
    body.append("")
    body.append("def _ps_max(env):")
    body.append("    return (" + ", ".join(r.bound(a) for a in sp.ps_max) + ",)")
    body.append("")
    body.extend(r.piecewise_fn("_first", sp.first, r.vector_leaf))
    body.append("")
    body.extend(r.piecewise_fn("_count", sp.count, r.scalar_leaf))
    body.append("")
    body.append("def _in_cs(env):")
    if sp.first.has_default:
        body.append("    return _first(env) is not None")
    else:
        body.append("    return True  # 'first' has no null default: CS = PS")
    body.append("")
    body.extend(r.body_fn(sp.source.body))
    body.append("")

    entries: list[str] = []
    for i, plan in enumerate(sp.streams):
        prefix = f"_s{i}"
        body.extend(r.piecewise_fn(f"{prefix}_first_s", plan.first_s, r.vector_leaf))
        body.append("")
        body.extend(r.piecewise_fn(f"{prefix}_pass", plan.pass_amount, r.scalar_leaf))
        body.append("")
        body.extend(r.piecewise_fn(f"{prefix}_soak", plan.soak, r.scalar_leaf))
        body.append("")
        body.extend(r.piecewise_fn(f"{prefix}_drain", plan.drain, r.scalar_leaf))
        body.append("")
        entries.append(
            "    {"
            + f"'name': {plan.name!r}, "
            + f"'stationary': {plan.stationary!r}, "
            + f"'hop': {tuple(int(c) for c in plan.hop)!r}, "
            + f"'latches': {plan.internal_buffers()!r}, "
            + f"'inc_s': {tuple(int(c) for c in plan.increment_s)!r}, "
            + f"'first_s': {prefix}_first_s, "
            + f"'pass_amount': {prefix}_pass, "
            + f"'soak': {prefix}_soak, "
            + f"'drain': {prefix}_drain"
            + "},"
        )
    body.append("STREAMS = [")
    body.extend(entries)
    body.append("]")

    header = [
        f'"""Standalone systolic program for {sp.source.name!r} '
        f"[{sp.array.name}].",
        "",
        "Generated by repro.target.pygen; requires only the standard library.",
        "",
        "run(sizes, inputs)           -- fast cooperative engine",
        "                                (generator processes, unbounded FIFOs)",
        "run_threaded(sizes, inputs)  -- threads + bounded queues",
        "                                (the paper's distributed target model)",
        "",
        "The network is a Kahn process network (one producer and one consumer",
        "per channel), so both engines produce identical results.",
        '"""',
    ]
    if r.needs_fraction:
        header += ["", "from fractions import Fraction as _Fr"]
    return "\n".join(header + [""] + body) + _RUNNER


_RUNNER = '''

# ---------------------------------------------------------------- runner --
from collections import deque as _deque
import queue as _queue
import threading as _threading


def _box_points(lo, hi):
    if len(lo) == 1:
        return [(c,) for c in range(lo[0], hi[0] + 1)]
    out = []
    for c in range(lo[0], hi[0] + 1):
        for rest in _box_points(lo[1:], hi[1:]):
            out.append((c,) + rest)
    return out


def _add(p, q):
    return tuple(a + b for a, b in zip(p, q))


def _env_of(point, sizes):
    env = dict(sizes)
    for name, value in zip(COORDS, point):
        env[name] = value
    return env


def _cnt(value):
    """Closed-form result -> non-negative int ('null' means zero)."""
    if value is None:
        return 0
    count = int(value)
    if count != value:
        raise ValueError('non-integer amount %r' % (value,))
    if count < 0:
        raise ValueError('negative amount %r' % (value,))
    return count


# Processes are generators: ``value = yield chan`` receives from a channel,
# ``chan.put(value)`` sends.  Both engines drive the same generators.

def _passer(cin, cout, count):
    for _ in range(count):
        value = yield cin
        cout.put(value)


def _feeder(chan, elements, values):
    for element in elements:
        chan.put(values[element])
    yield from ()


def _drainer(chan, elements, sink):
    for element in elements:
        sink[element] = yield chan


def _compute(point, sizes, env, in_chan, out_chan):
    stationary = [s for s in STREAMS if s['stationary']]
    moving = [s for s in STREAMS if not s['stationary']]
    local = {}
    # -- pre phase: stationary loads, then moving soaks --------------------
    for s in stationary:
        name = s['name']
        cin, cout = in_chan[name][point], out_chan[name][point]
        local[name] = yield cin
        for _ in range(_cnt(s['drain'](env))):  # loading passes = drain
            value = yield cin
            cout.put(value)
    for s in moving:
        name = s['name']
        cin, cout = in_chan[name][point], out_chan[name][point]
        for _ in range(_cnt(s['soak'](env))):
            value = yield cin
            cout.put(value)
    # -- the repeater: the basic statements of this process ----------------
    moving_io = [
        (s['name'], in_chan[s['name']][point], out_chan[s['name']][point])
        for s in moving
    ]
    x = _first(env)
    for _ in range(_cnt(_count(env))):
        stmt_env = dict(sizes)
        for index, value in zip(INDICES, x):
            stmt_env[index] = value
        values = dict(local)
        for name, cin, _cout in moving_io:
            values[name] = yield cin
        values = _body(values, stmt_env)
        for s in stationary:
            local[s['name']] = values[s['name']]
        for name, _cin, cout in moving_io:
            cout.put(values[name])
        x = _add(x, INCREMENT)
    # -- post phase: moving drains, then stationary recoveries -------------
    for s in moving:
        name = s['name']
        cin, cout = in_chan[name][point], out_chan[name][point]
        for _ in range(_cnt(s['drain'](env))):
            value = yield cin
            cout.put(value)
    for s in stationary:
        name = s['name']
        cin, cout = in_chan[name][point], out_chan[name][point]
        for _ in range(_cnt(s['soak'](env))):  # recovery passes = soak
            value = yield cin
            cout.put(value)
        cout.put(local[name])


def _build(sizes, inputs, new_chan):
    """Instantiate the process network: generators + channels."""
    lo = tuple(int(c) for c in _ps_min(sizes))
    hi = tuple(int(c) for c in _ps_max(sizes))
    order = _box_points(lo, hi)
    space = set(order)
    envs = {point: _env_of(point, sizes) for point in order}
    cs = {point: _in_cs(envs[point]) for point in order}
    final = {name: dict(values) for name, values in inputs.items()}
    procs = []
    in_chan = {s['name']: {} for s in STREAMS}
    out_chan = {s['name']: {} for s in STREAMS}
    chain_total = {}
    for spec in STREAMS:
        name, hop = spec['name'], spec['hop']
        for start in order:
            if tuple(a - b for a, b in zip(start, hop)) in space:
                continue  # not a pipe head
            chain = []
            z = start
            while z in space:
                chain.append(z)
                z = _add(z, hop)
            env0 = envs[start]
            if any(cs[p] for p in chain):
                total = _cnt(spec['pass_amount'](env0))
            else:
                total = 0  # no basic statement on the pipe
            for p in chain:
                chain_total[(name, p)] = total
            head = feed = new_chan()
            for idx, y in enumerate(chain):
                if idx > 0:
                    link = new_chan()
                    out_chan[name][chain[idx - 1]] = link
                    feed = link
                for _ in range(spec['latches']):
                    buffered = new_chan()
                    procs.append(_passer(feed, buffered, total))
                    feed = buffered
                in_chan[name][y] = feed
            tail = new_chan()
            out_chan[name][chain[-1]] = tail
            elements = []
            if total:
                cur = spec['first_s'](env0)
                for _ in range(total):
                    elements.append(cur)
                    cur = _add(cur, spec['inc_s'])
            procs.append(_feeder(head, elements, inputs[name]))
            procs.append(_drainer(tail, elements, final[name]))
    for point in order:
        if cs[point]:
            procs.append(_compute(point, sizes, envs[point], in_chan, out_chan))
        else:
            for s in STREAMS:  # PS \\ CS: one pass loop per stream
                procs.append(_passer(
                    in_chan[s['name']][point],
                    out_chan[s['name']][point],
                    chain_total[(s['name'], point)],
                ))
    return procs, final


# --------------------------------------------------- cooperative engine --
class _Chan:
    """Unbounded FIFO with a single parked consumer."""

    __slots__ = ('buf', 'waiter', 'ready')

    def __init__(self, ready):
        self.buf = _deque()
        self.waiter = None
        self.ready = ready

    def put(self, value):
        self.buf.append(value)
        waiter = self.waiter
        if waiter is not None:
            self.waiter = None
            self.ready.append((waiter, self))


def run(sizes, inputs):
    """Execute with the fast cooperative engine; returns final contents."""
    ready = _deque()
    procs, final = _build(sizes, inputs, lambda: _Chan(ready))
    blocked = 0

    def step(gen, value):
        nonlocal blocked
        send = gen.send
        while True:
            try:
                chan = send(value)
            except StopIteration:
                return
            buf = chan.buf
            if buf:
                value = buf.popleft()
            else:
                chan.waiter = gen
                blocked += 1
                return

    for gen in procs:
        step(gen, None)
    while ready:
        gen, chan = ready.popleft()
        blocked -= 1
        step(gen, chan.buf.popleft())
    if blocked:
        raise RuntimeError(
            'generated program deadlocked: %d process(es) blocked' % blocked
        )
    return final


# ------------------------------------------------------ threaded engine --
class _QChan:
    """Bounded queue channel (transputer-style, capacity 1)."""

    __slots__ = ('q',)

    def __init__(self):
        self.q = _queue.Queue(maxsize=1)

    def put(self, value):
        self.q.put(value)

    def get(self):
        return self.q.get()


def _drive(gen):
    value = None
    try:
        while True:
            chan = gen.send(value)
            value = chan.get()
    except StopIteration:
        pass


def run_threaded(sizes, inputs):
    """Execute with one thread per process and bounded queues."""
    procs, final = _build(sizes, inputs, _QChan)
    threads = [
        _threading.Thread(target=_drive, args=(gen,), daemon=True)
        for gen in procs
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        if t.is_alive():
            raise RuntimeError('generated program deadlocked (threaded mode)')
    return final
'''


# ---------------------------------------------------------------------------
# Two-level compile cache.
#
# Level 1 (in process): a bounded LRU of compiled module namespaces keyed by
# the sha-256 of the generated source.  A design-space sweep compiles
# hundreds of distinct modules; the old unbounded dict retained every one of
# them (plus its exec'd namespace) for the life of the process.
#
# Level 2 (on disk, optional): rendered sources keyed by a *design
# fingerprint*, so repeated CLI/bench invocations skip rendering entirely.
# Enable it by passing ``cache_dir`` to :func:`render_python_cached` /
# :func:`execute_python` or by setting ``REPRO_RENDER_CACHE`` to a directory.

#: bumped whenever the generated-source format changes; part of every
#: design fingerprint so a stale disk cache can never resurface old code
PYGEN_FORMAT_VERSION = "1"

DEFAULT_MODULE_CACHE_SIZE = 64


class ModuleCache:
    """Bounded LRU of compiled module namespaces, keyed by source hash.

    Exposes ``hits`` / ``misses`` / ``evictions`` counters so sweeps and
    benchmarks can report cache effectiveness.

    Safe to share across the compile service's executor threads: lookups
    and inserts hold one lock; the compile+exec of a missed module runs
    outside it (a racing duplicate compile produces an equivalent
    namespace, and last-write-wins keeps exactly one).
    """

    def __init__(self, capacity: int = DEFAULT_MODULE_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._capacity = capacity
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_of(source: str) -> str:
        return hashlib.sha256(source.encode()).hexdigest()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, source: str) -> bool:
        return self.key_of(source) in self._entries

    def namespace_for(self, source: str) -> dict:
        """The compiled+exec'd namespace of ``source`` (compiling on miss).

        Every rendered module ends with the constant :data:`_RUNNER` engine
        text, which dominates compile time; on a miss only the per-design
        head is compiled fresh and the engine's code object (compiled once
        per process) is exec'd after it into the same namespace.  The
        generated process functions reach the engine helpers through module
        globals at call time, so the split is invisible to the module.
        """
        key = self.key_of(source)
        with self._lock:
            namespace = self._entries.get(key)
            if namespace is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return namespace
            self.misses += 1
        namespace = {}
        if source.endswith(_RUNNER):
            head = source[: -len(_RUNNER)]
            exec(compile(head, "<repro.target.pygen>", "exec"), namespace)
            exec(_runner_code(), namespace)
        else:
            exec(compile(source, "<repro.target.pygen>", "exec"), namespace)
        with self._lock:
            self._entries[key] = namespace
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return namespace

    def discard(self, source: str) -> None:
        """Drop one entry (used by benchmarks to force a cold run)."""
        with self._lock:
            self._entries.pop(self.key_of(source), None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        return {
            "capacity": self._capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: the runner engine's code object, compiled once per process and shared by
#: every cached module (the engine text never varies across designs)
_RUNNER_CODE = None


def _runner_code():
    global _RUNNER_CODE
    if _RUNNER_CODE is None:
        _RUNNER_CODE = compile(_RUNNER, "<repro.target.pygen:runner>", "exec")
    return _RUNNER_CODE


MODULE_CACHE = ModuleCache(
    capacity=env_int(
        "REPRO_PYGEN_CACHE_SIZE", DEFAULT_MODULE_CACHE_SIZE, minimum=1
    )
)


def _module_for(source: str) -> dict:
    return MODULE_CACHE.namespace_for(source)


def design_fingerprint(sp: SystolicProgram) -> str:
    """A stable identity for (source program, array spec, generator version).

    Built from the canonical ``to_source()`` text and the exact step/place/
    loading numbers, so it is reproducible across processes -- the key of
    the on-disk render cache and of the compile service's design store.
    """
    return fingerprint_of(sp.source, sp.array)


def fingerprint_of(program, array) -> str:
    """:func:`design_fingerprint` computed *before* compilation.

    The fingerprint depends only on the source program and the array spec,
    so callers that need the key up front (the compile service coalesces
    identical in-flight compiles on it) can hash the request without paying
    for ``compile_systolic`` first.  Identical by construction to the
    fingerprint of the compiled ``SystolicProgram``.
    """
    h = hashlib.sha256()
    h.update(PYGEN_FORMAT_VERSION.encode())
    h.update(b"\x00")
    h.update(program.to_source().encode())
    h.update(b"\x00")
    h.update(repr(array.step.rows).encode())
    h.update(b"\x00")
    h.update(repr(array.place.rows).encode())
    h.update(b"\x00")
    loading = sorted(
        (name, tuple(vec)) for name, vec in array.loading_vectors.items()
    )
    h.update(repr(loading).encode())
    return h.hexdigest()


def _render_cache_dir(cache_dir) -> "Path | None":
    if cache_dir is not None:
        return Path(cache_dir)
    env_dir = os.environ.get("REPRO_RENDER_CACHE")
    return Path(env_dir) if env_dir else None


def render_python_cached(sp: SystolicProgram, cache_dir=None) -> str:
    """:func:`render_python` behind the optional on-disk render cache.

    With no ``cache_dir`` argument and no ``REPRO_RENDER_CACHE`` environment
    variable this is exactly :func:`render_python`.  Otherwise the rendered
    source is stored under ``<dir>/<fingerprint>.py`` and later invocations
    (including in other processes) read it back without rendering.
    """
    root = _render_cache_dir(cache_dir)
    if root is None:
        return render_python(sp)
    path = root / f"{design_fingerprint(sp)}.py"
    try:
        return path.read_text()
    except OSError:
        pass
    source = render_python(sp)
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(source)
        tmp.replace(path)  # atomic: concurrent writers race benignly
    except OSError:
        pass  # a read-only cache directory disables writing, not execution
    return source


def execute_python(
    sp: SystolicProgram,
    env: Mapping[str, int],
    inputs=None,
    *,
    threaded: bool = False,
    cache_dir=None,
) -> dict:
    """Render, compile and run the generated module at a problem size.

    Returns ``{variable: {tuple(element): value}}`` -- the same contents the
    sequential oracle and the simulator produce, with tuple keys.
    ``threaded=True`` selects the threads-plus-bounded-queues engine instead
    of the fast cooperative one; results are identical.  Rendering goes
    through the two-level cache: the bounded in-process :data:`MODULE_CACHE`
    plus, when ``cache_dir`` (or ``REPRO_RENDER_CACHE``) names a directory,
    the on-disk render cache.
    """
    source = render_python_cached(sp, cache_dir)
    module = _module_for(source)
    state = initial_state(sp.source, env, inputs)
    dense = {
        name: {tuple(int(c) for c in p): v for p, v in values.items()}
        for name, values in state.items()
    }
    sizes = {k: int(v) for k, v in env.items()}
    runner = module["run_threaded"] if threaded else module["run"]
    return runner(sizes, dense)
