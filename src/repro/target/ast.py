"""The abstract target syntax (Appendix C).

A :class:`TargetProgram` is the language-independent distributed program the
scheme derives: one parameterised computation process replicated over the
process space, boundary input/output processes per stream pipe, and buffer
processes on the points of ``PS \\ CS``.  Every quantity is still symbolic
(piecewise affine over the process-space coordinates and size symbols) --
rendering to a concrete notation is the job of :mod:`repro.target.pretty`
(the paper's notation), :mod:`repro.target.occam`, :mod:`repro.target.cgen`
and :mod:`repro.target.pygen`.

The computation process is a phase list in the appendix order: stationary
loads (one receive plus the loading passes), moving soaks, the repeater
loop around the basic statement, moving drains, and stationary recoveries
(the recovery passes plus the final send of the resident element).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.lang.expr import Body
from repro.symbolic.affine import AffineVec
from repro.symbolic.piecewise import Piecewise


@dataclass(frozen=True)
class TargetRepeater:
    """``{first last increment}`` with piecewise-affine endpoints."""

    first: Piecewise
    last: Piecewise
    increment: Point


@dataclass(frozen=True)
class LoadPhase:
    """Stationary pre-phase: receive the resident element, then forward
    ``passes`` elements destined for processes further down the pipe."""

    stream: str
    passes: Piecewise  # = the stream's drain amount (Section 6.5)


@dataclass(frozen=True)
class SoakPhase:
    """Moving pre-phase: pass ``amount`` elements through (Eq. 8)."""

    stream: str
    amount: Piecewise


@dataclass(frozen=True)
class ComputeLoop:
    """The repeater loop: par-receive the moving streams, execute the basic
    statement, par-send the moving streams."""

    repeater: TargetRepeater
    recv_streams: tuple[str, ...]  # the moving streams, in plan order
    send_streams: tuple[str, ...]
    body: Body
    indices: tuple[str, ...]  # source loop indices bound by the repeater


@dataclass(frozen=True)
class DrainPhase:
    """Moving post-phase: pass ``amount`` elements through (Eq. 9)."""

    stream: str
    amount: Piecewise


@dataclass(frozen=True)
class RecoverPhase:
    """Stationary post-phase: forward ``passes`` recovered elements from
    upstream, then send the resident element itself."""

    stream: str
    passes: Piecewise  # = the stream's soak amount (Section 6.5)


Phase = object  # LoadPhase | SoakPhase | ComputeLoop | DrainPhase | RecoverPhase


@dataclass(frozen=True)
class ComputeProcess:
    """The parameterised computation process, replicated over CS."""

    coords: tuple[str, ...]
    phases: tuple[Phase, ...]


@dataclass(frozen=True)
class IOProcess:
    """A boundary process: ``in s : {first_s last_s increment_s}`` feeds the
    head of every pipe of stream ``s``; ``out s`` drains the tail."""

    stream: str
    direction: str  # "in" | "out"
    repeater: TargetRepeater


@dataclass(frozen=True)
class BufferProcess:
    """One PS \\ CS point: parallel ``pass s, amount`` loops (Eq. 10)."""

    passes: tuple[tuple[str, Piecewise], ...]  # (stream, whole-pipe amount)


@dataclass(frozen=True)
class ChannelDecl:
    """Per-stream link structure between neighbouring processes."""

    stream: str
    hop: Point  # the one-process move of the stream's elements
    stationary: bool
    latches: int  # interposed latch buffers per link (denominator - 1)


@dataclass(frozen=True)
class TargetProgram:
    """The complete abstract distributed program."""

    name: str  # source program name
    array_name: str
    coords: tuple[str, ...]
    sizes: tuple[str, ...]
    ps_min: AffineVec
    ps_max: AffineVec
    channels: tuple[ChannelDecl, ...]
    compute: ComputeProcess
    inputs: tuple[IOProcess, ...]
    outputs: tuple[IOProcess, ...]
    buffer: BufferProcess

    @property
    def stream_names(self) -> tuple[str, ...]:
        return tuple(c.stream for c in self.channels)
