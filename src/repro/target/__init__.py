"""Target backends: the compiled program rendered for real machines.

``build_target_program`` lowers a :class:`~repro.core.program.SystolicProgram`
into the abstract target syntax of Appendix C; the renderers then produce

* :func:`render_paper`  -- the paper's own notation (Appendices D/E),
* :func:`render_occam`  -- the transputer translation (occam flavour),
* :func:`render_c`      -- C with channel directives (Symult s2010 flavour),
* :func:`render_python` -- an executable, stdlib-only Python module.

:func:`execute_python` renders, compiles, and runs the Python module --
the compiled fast path whose results are bit-for-bit identical to the
coroutine simulator and the sequential oracle.
"""

from repro.target.build import build_target_program
from repro.target.cgen import render_c
from repro.target.occam import render_occam
from repro.target.pretty import format_piecewise, format_repeater, render_paper
from repro.target.pygen import execute_python, render_python

__all__ = [
    "build_target_program",
    "execute_python",
    "format_piecewise",
    "format_repeater",
    "render_c",
    "render_occam",
    "render_paper",
    "render_python",
]
