"""Target backends: the compiled program rendered for real machines.

``build_target_program`` lowers a :class:`~repro.core.program.SystolicProgram`
into the abstract target syntax of Appendix C; the renderers then produce

* :func:`render_paper`  -- the paper's own notation (Appendices D/E),
* :func:`render_occam`  -- the transputer translation (occam flavour),
* :func:`render_c`      -- C with channel directives (Symult s2010 flavour),
* :func:`render_python` -- an executable, stdlib-only Python module.

:func:`execute_python` renders, compiles, and runs the Python module --
the compiled fast path whose results are bit-for-bit identical to the
coroutine simulator and the sequential oracle.  :func:`execute_numpy` /
:func:`execute_numpy_batch` (the *npgen* backend, optional NumPy extra)
skip code generation entirely and execute whole wavefronts as batched
array operations -- same results, orders of magnitude faster at large
sizes, with a leading batch axis for many independent input sets.
"""

from repro.target.build import build_target_program
from repro.target.cgen import render_c
from repro.target.npgen import HAVE_NUMPY, execute_numpy, execute_numpy_batch
from repro.target.occam import render_occam
from repro.target.pretty import format_piecewise, format_repeater, render_paper
from repro.target.pygen import execute_python, render_python

__all__ = [
    "HAVE_NUMPY",
    "build_target_program",
    "execute_numpy",
    "execute_numpy_batch",
    "execute_python",
    "format_piecewise",
    "format_repeater",
    "render_c",
    "render_occam",
    "render_paper",
    "render_python",
]
