"""Rendering the abstract target program in an occam flavour.

The 1991 authors hand-translated their generated programs to occam for the
transputer experiments; this renderer performs the same translation
mechanically.  Symbolic per-process amounts (soak/drain/step counts) become
``VAL INT`` parameters that the surrounding harness computes from the
closed forms -- each is annotated with its ``if .. [] .. fi`` form, so the
output stays a faithful, readable record of the derivation.
"""

from __future__ import annotations

from repro.target.ast import (
    ComputeLoop,
    DrainPhase,
    LoadPhase,
    RecoverPhase,
    SoakPhase,
    TargetProgram,
)
from repro.target.pretty import format_piecewise, format_repeater


def _occam_expr(expr) -> str:
    from repro.lang.expr import BinOp, Const, IndexExpr, StreamRead

    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, StreamRead):
        return f"v.{expr.name}"
    if isinstance(expr, IndexExpr):
        return f"({expr.affine})"
    if isinstance(expr, BinOp):
        left, right = _occam_expr(expr.left), _occam_expr(expr.right)
        if expr.op in ("min", "max"):
            return f"{expr.op.upper()} ({left}, {right})"
        return f"({left} {expr.op} {right})"
    raise TypeError(f"cannot render {expr!r}")


def render_occam(tp: TargetProgram) -> str:
    coords = ", ".join(tp.coords)
    streams = tp.stream_names
    lines: list[str] = [
        f"-- occam flavour of '{tp.name}' on array '{tp.array_name}'",
        f"-- process space PS: {tuple(str(a) for a in tp.ps_min)} .. "
        f"{tuple(str(a) for a in tp.ps_max)}",
        "",
        "PROC pass.elems (VAL INT count, CHAN OF INT c.in, c.out)",
        "  INT v :",
        "  SEQ k = 0 FOR count",
        "    SEQ",
        "      c.in ? v",
        "      c.out ! v",
        ":",
        "",
    ]
    # ---------------------------------------------------------- compute --
    chan_params = ", ".join(f"{s}.in, {s}.out" for s in streams)
    amount_params = ", ".join(f"{s}.soak, {s}.drain" for s in streams)
    lines.append(f"PROC compute (VAL INT {coords}, steps, {amount_params},")
    lines.append(f"              CHAN OF INT {chan_params})")
    decls = ", ".join(f"v.{s}" for s in streams)
    lines.append(f"  INT {decls} :")
    lines.append("  SEQ")
    for phase in tp.compute.phases:
        lines.extend(_occam_phase(phase))
    lines.append(":")
    lines.append("")
    # --------------------------------------------------------------- i/o --
    for io in tp.inputs:
        lines.append(
            f"PROC input.{io.stream} (VAL INT count, CHAN OF INT out)"
            f"  -- repeater {format_repeater(io.repeater)}"
        )
        lines.append("  SEQ k = 0 FOR count")
        lines.append(f"    out ! next.element.of.{io.stream} (k)")
        lines.append(":")
    lines.append("")
    for io in tp.outputs:
        lines.append(
            f"PROC output.{io.stream} (VAL INT count, CHAN OF INT in)"
            f"  -- repeater {format_repeater(io.repeater)}"
        )
        lines.append("  INT v :")
        lines.append("  SEQ k = 0 FOR count")
        lines.append("    SEQ")
        lines.append("      in ? v")
        lines.append(f"      store.element.of.{io.stream} (k, v)")
        lines.append(":")
    lines.append("")
    # ------------------------------------------------------------ buffer --
    buf_chans = ", ".join(f"{s}.in, {s}.out" for s, _ in tp.buffer.passes)
    buf_counts = ", ".join(f"{s}.amount" for s, _ in tp.buffer.passes)
    lines.append(f"PROC buffer (VAL INT {buf_counts}, CHAN OF INT {buf_chans})")
    lines.append("  PAR")
    for stream, amount in tp.buffer.passes:
        lines.append(
            f"    pass.elems ({stream}.amount, {stream}.in, {stream}.out)"
            f"  -- {format_piecewise(amount)}"
        )
    lines.append(":")
    lines.append("")
    # --------------------------------------------------------- top level --
    lines.append("-- the array: computation processes over CS, buffers over")
    lines.append("-- PS \\ CS, i/o processes on the pipe boundaries")
    lines.append("PAR")
    rep = "  ".join(f"PAR {c} = ps.min FOR ps.size" for c in tp.coords)
    lines.append(f"  {rep}")
    args = ", ".join(tp.coords)
    lines.append(f"    compute ({args}, ...)  -- or buffer (...) outside CS")
    for io in tp.inputs:
        lines.append(f"  input.{io.stream} (...)")
    for io in tp.outputs:
        lines.append(f"  output.{io.stream} (...)")
    return "\n".join(lines)


def _occam_phase(phase) -> list[str]:
    pad = "    "
    if isinstance(phase, LoadPhase):
        s = phase.stream
        return [
            f"{pad}-- load {s}; loading passes = {format_piecewise(phase.passes)}",
            f"{pad}{s}.in ? v.{s}",
            f"{pad}pass.elems ({s}.drain, {s}.in, {s}.out)",
        ]
    if isinstance(phase, SoakPhase):
        s = phase.stream
        return [
            f"{pad}-- soak {s} = {format_piecewise(phase.amount)}",
            f"{pad}pass.elems ({s}.soak, {s}.in, {s}.out)",
        ]
    if isinstance(phase, ComputeLoop):
        out = [f"{pad}-- repeater {format_repeater(phase.repeater)}"]
        out.append(f"{pad}SEQ k = 0 FOR steps")
        out.append(f"{pad}  SEQ")
        inner = f"{pad}    "
        if phase.recv_streams:
            out.append(f"{inner}PAR")
            for s in phase.recv_streams:
                out.append(f"{inner}  {s}.in ? v.{s}")
        for branch in phase.body.branches:
            stmts = [
                f"v.{a.stream} := {_occam_expr(a.expr)}" for a in branch.assigns
            ]
            if branch.condition is None:
                out.extend(f"{inner}{s}" for s in stmts)
            else:
                cond = branch.condition
                out.append(f"{inner}IF")
                out.append(f"{inner}  ({cond.affine}) {cond.relation} 0")
                out.append(f"{inner}    SEQ")
                out.extend(f"{inner}      {s}" for s in stmts)
                out.append(f"{inner}  TRUE")
                out.append(f"{inner}    SKIP")
        if phase.send_streams:
            out.append(f"{inner}PAR")
            for s in phase.send_streams:
                out.append(f"{inner}  {s}.out ! v.{s}")
        return out
    if isinstance(phase, DrainPhase):
        s = phase.stream
        return [
            f"{pad}-- drain {s} = {format_piecewise(phase.amount)}",
            f"{pad}pass.elems ({s}.drain, {s}.in, {s}.out)",
        ]
    if isinstance(phase, RecoverPhase):
        s = phase.stream
        return [
            f"{pad}-- recover {s}; recovery passes = {format_piecewise(phase.passes)}",
            f"{pad}pass.elems ({s}.soak, {s}.in, {s}.out)",
            f"{pad}{s}.out ! v.{s}",
        ]
    raise TypeError(f"unknown phase {phase!r}")
