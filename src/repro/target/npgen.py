"""The vectorized NumPy backend: execute whole wavefronts as array ops.

Where :mod:`repro.target.pygen` runs the generated process network one
scalar channel operation at a time, this backend exploits two facts the
compilation scheme already guarantees:

* the network is a **Kahn process network**, so the final variable
  contents depend only on the per-channel value sequences -- never on
  scheduling -- and are exactly the sequential oracle's results;
* the dependence-respect check makes ``step`` strictly increase along
  every dependence, so all basic statements with the same ``step . x``
  are independent and may execute *simultaneously*.

Execution therefore reduces to the wavefront schedule of
:mod:`repro.analysis.wavefront`: for each logical time step, **gather**
the current element of every stream through the precomputed integer index
maps (the affine maps ``M . x`` lowered by
:func:`repro.symbolic.compile.lower_affine_int`), apply the basic
statement **once** as vectorized ufuncs over the whole wavefront (guards
become boolean masks, index expressions become precomputed integer
arrays), and **scatter** the written streams back.  Soak/drain phases and
``PS \\ CS`` pass-through processes move values without changing them, so
on the dense variable arrays they are the identity and vanish entirely --
the array *is* the pipe contents at every instant.

A leading **batch axis** amortizes one schedule across ``B`` independent
input sets (:func:`execute_numpy_batch`): the gather/scatter maps and
masks are shape ``(W,)`` and broadcast against value arrays of shape
``(B, W)``, so batching costs one extra array dimension, not another
pass.

Values are lowered to ``int64`` by default (bit-exact for every test and
benchmark workload; pass ``dtype=object`` for arbitrary-precision exact
arithmetic at reduced speed).  Programs outside the backend's value
domain -- fractional constants or index-expression coefficients -- raise
:class:`~repro.util.errors.BackendUnsupportedError` so callers can fall
back to pygen.  NumPy itself is an optional extra (``pip install
repro[np]``); importing this module without it is fine, calling into it
raises a :class:`~repro.util.errors.MissingDependencyError` with the
install hint.
"""

from __future__ import annotations

import itertools
import operator
from fractions import Fraction
from typing import Mapping, Sequence

from repro.core.program import SystolicProgram
from repro.lang.expr import BinOp, Body, Const, Expr, IndexExpr, StreamRead
from repro.lang.interpreter import initial_state
from repro.symbolic.affine import Numeric
from repro.symbolic.compile import lower_affine_int
from repro.util import require_numpy
from repro.util.errors import BackendUnsupportedError, CompilationError

try:  # NumPy is optional: keep the module importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: True when NumPy is importable; callers use this for graceful skips.
HAVE_NUMPY = _np is not None

__all__ = [
    "HAVE_NUMPY",
    "execute_numpy",
    "execute_numpy_banded",
    "execute_numpy_batch",
    "schedule_cache_stats",
]


# ----------------------------------------------------------------------
# basic-statement lowering: expressions -> array closures
# ----------------------------------------------------------------------
def _np_ops():
    return {
        "+": operator.add,
        "-": operator.sub,
        "*": operator.mul,
        "min": _np.minimum,
        "max": _np.maximum,
    }


_RELATION_TESTS = {
    "==": lambda v: v == 0,
    "!=": lambda v: v != 0,
    "<=": lambda v: v <= 0,
    "<": lambda v: v < 0,
    ">=": lambda v: v >= 0,
    ">": lambda v: v > 0,
}


def _const_int(value) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, Fraction)):
        raise BackendUnsupportedError(
            f"npgen cannot lower constant {value!r} (exact integers only)"
        )
    f = Fraction(value)
    if f.denominator != 1:
        raise BackendUnsupportedError(
            f"npgen cannot lower fractional constant {value!r}; "
            "use the pygen backend for exact rational programs"
        )
    return int(f)


def _compile_expr(e: Expr, affine_ix: dict, ops) -> object:
    """Lower one expression tree into ``fn(cur, aff) -> array``.

    ``cur`` maps stream names to their gathered current values,
    ``aff`` is the list of precomputed index-expression arrays of the
    wavefront being executed.
    """
    if isinstance(e, Const):
        v = _const_int(e.value)
        return lambda cur, aff: v
    if isinstance(e, StreamRead):
        name = e.name
        return lambda cur, aff: cur[name]
    if isinstance(e, IndexExpr):
        i = affine_ix[e.affine]
        return lambda cur, aff: aff[i]
    if isinstance(e, BinOp):
        fn_l = _compile_expr(e.left, affine_ix, ops)
        fn_r = _compile_expr(e.right, affine_ix, ops)
        op = ops[e.op]
        return lambda cur, aff: op(fn_l(cur, aff), fn_r(cur, aff))
    raise BackendUnsupportedError(f"npgen cannot lower expression {e!r}")


class _BodyPlan:
    """The basic statement, lowered once per schedule.

    ``branches`` holds ``(branch_index, [(stream, closure), ...])`` in
    source order; ``step_affs[s]`` / ``step_masks[s]`` hold, for wavefront
    ``s``, the precomputed index-expression value arrays and the per-branch
    guard masks (``None`` for unconditional branches).
    """

    __slots__ = ("branches", "step_affs", "step_masks", "active")

    def __init__(self, schedule, body: Body) -> None:
        ops = _np_ops()
        env = schedule.env_of()
        order = schedule.indices

        affines: list = []
        affine_ix: dict = {}

        def note(affine) -> None:
            if affine not in affine_ix:
                affine_ix[affine] = len(affines)
                affines.append(affine)

        def walk(e: Expr) -> None:
            if isinstance(e, IndexExpr):
                note(e.affine)
            elif isinstance(e, BinOp):
                walk(e.left)
                walk(e.right)

        for branch in body.branches:
            if branch.condition is not None:
                note(branch.condition.affine)
            for a in branch.assigns:
                walk(a.expr)

        lowered = []
        for affine in affines:
            coeffs, const, den = lower_affine_int(affine, order, env)
            if den != 1:
                raise BackendUnsupportedError(
                    f"npgen cannot lower {affine} (fractional coefficients); "
                    "use the pygen backend"
                )
            lowered.append((_np.asarray(coeffs, dtype=_np.int64), const))

        self.branches = [
            (
                bi,
                [
                    (a.stream, _compile_expr(a.expr, affine_ix, ops))
                    for a in branch.assigns
                ],
            )
            for bi, branch in enumerate(body.branches)
        ]
        self.active = tuple(
            sorted(set(schedule.streams_read) | set(schedule.streams_written))
        )

        self.step_affs = []
        self.step_masks = []
        for step in schedule.steps:
            aff = [coeffs @ step.points + const for coeffs, const in lowered]
            masks = []
            for branch in body.branches:
                if branch.condition is None:
                    masks.append(None)
                else:
                    test = _RELATION_TESTS[branch.condition.relation]
                    masks.append(test(aff[affine_ix[branch.condition.affine]]))
            self.step_affs.append(aff)
            self.step_masks.append(tuple(masks))


def _plan_for(schedule, body: Body) -> _BodyPlan:
    plan = schedule.runtime_cache.get("npgen_body_plan")
    if plan is None:
        plan = _BodyPlan(schedule, body)
        schedule.runtime_cache["npgen_body_plan"] = plan
    return plan


# ----------------------------------------------------------------------
# dense storage <-> interpreter variable states
# ----------------------------------------------------------------------
def _pick_dtype(dense_states: Sequence[Mapping]) -> object:
    for state in dense_states:
        for values in state.values():
            for v in values.values():
                if isinstance(v, bool) or not isinstance(v, int):
                    return object
    return _np.int64


def _states_to_arrays(schedule, dense_states, dtype) -> dict:
    arrays = {}
    for name, layout in schedule.layouts.items():
        arr = _np.zeros((len(dense_states), layout.size), dtype=dtype)
        lo, strides = layout.lo, layout.strides
        for b, state in enumerate(dense_states):
            buf = arr[b]
            for p, v in state[name].items():
                i = 0
                for c, l, s in zip(p, lo, strides):
                    i += (int(c) - l) * s
                buf[i] = v
        arrays[name] = arr
    return arrays


def _arrays_to_state(schedule, arrays, b: int, exact: bool) -> dict:
    out = {}
    for name, layout in schedule.layouts.items():
        buf = arrays[name][b]
        ranges = [
            range(l, l + n) for l, n in zip(layout.lo, layout.shape)
        ]
        values = {}
        i = 0
        for point in itertools.product(*ranges):
            v = buf[i]
            values[point] = v if exact else int(v)
            i += 1
        out[name] = values
    return out


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
def _run(schedule, plan: _BodyPlan, arrays: dict) -> None:
    written = schedule.streams_written
    active = plan.active
    where = _np.where
    for step, aff, masks in zip(schedule.steps, plan.step_affs, plan.step_masks):
        gather = step.gather
        cur = {name: arrays[name][:, gather[name]] for name in active}
        for bi, assigns in plan.branches:
            mask = masks[bi]
            for name, fn in assigns:
                new = fn(cur, aff)
                cur[name] = new if mask is None else where(mask, new, cur[name])
        for name in written:
            arrays[name][:, gather[name]] = cur[name]


def execute_numpy_batch(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs_batch: Sequence,
    *,
    dtype=None,
    use_cache: bool = True,
) -> list[dict]:
    """Run ``len(inputs_batch)`` independent executions in one pass.

    Each entry of ``inputs_batch`` is an ``inputs`` mapping as accepted by
    :func:`~repro.target.pygen.execute_python` (or ``None`` for zero
    fill); the result is the list of per-input final contents, each
    ``{variable: {tuple(element): value}}`` -- bit-identical to running
    the sequential oracle on every input set separately.
    """
    require_numpy("the npgen backend")
    from repro.analysis.wavefront import wavefront_schedule

    if not inputs_batch:
        raise CompilationError("execute_numpy_batch needs at least one input set")
    schedule = wavefront_schedule(sp, env, use_cache=use_cache)
    dense_states = [
        initial_state(sp.source, env, inputs) for inputs in inputs_batch
    ]
    if dtype is None:
        dtype = _pick_dtype(dense_states)
    plan = _plan_for(schedule, sp.source.body)
    arrays = _states_to_arrays(schedule, dense_states, dtype)
    _run(schedule, plan, arrays)
    exact = dtype is object
    return [
        _arrays_to_state(schedule, arrays, b, exact)
        for b in range(len(dense_states))
    ]


def _banded_cols(schedule, partition):
    """Per step, the wavefront columns each tile band owns.

    A list (one entry per step) of ``(band index, column index array)``
    pairs, restricted to non-empty bands; cached in the schedule's
    ``runtime_cache`` per band-edge vector so repeated banded runs at one
    shape reuse the slicing.
    """
    key = ("npgen_band_cols", partition.lead_edges)
    cached = schedule.runtime_cache.get(key)
    if cached is None:
        cached = []
        for step in schedule.steps:
            lead = step.cells[0]
            per = []
            for band in partition.bands:
                cols = _np.nonzero((lead >= band.lo) & (lead <= band.hi))[0]
                if cols.shape[0]:
                    per.append((band.index, cols))
            cached.append(tuple(per))
        cached = tuple(cached)
        schedule.runtime_cache[key] = cached
    return cached


def _run_banded(schedule, plan: _BodyPlan, arrays: dict, band_cols) -> None:
    """Banded (LSGP) variant of :func:`_run`: one band at a time per step.

    Mirrors how a fixed ``p``-band array executes a wavefront -- each band
    computes only its own slab of columns.  Bit-identical to the unbounded
    run: within one step the written-stream scatter indices are globally
    unique (the duplicate-write guard of the schedule builder), so no band
    can write an element another band of the same step reads.
    """
    written = schedule.streams_written
    active = plan.active
    where = _np.where
    for step, aff, masks, bands in zip(
        schedule.steps, plan.step_affs, plan.step_masks, band_cols
    ):
        gather = step.gather
        for _band_index, cols in bands:
            g = {name: gather[name][cols] for name in active}
            cur = {name: arrays[name][:, g[name]] for name in active}
            aff_band = [a[cols] for a in aff]
            for bi, assigns in plan.branches:
                mask = masks[bi]
                band_mask = None if mask is None else mask[cols]
                for name, fn in assigns:
                    new = fn(cur, aff_band)
                    cur[name] = (
                        new if band_mask is None else where(band_mask, new, cur[name])
                    )
            for name in written:
                arrays[name][:, g[name]] = cur[name]


def execute_numpy_banded(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs_batch: Sequence,
    *,
    shape: tuple[int, ...],
    dtype=None,
    use_cache: bool = True,
) -> list[dict]:
    """Banded batched execution on a fixed ``p``-band (or ``p x q``) array.

    The symbolic partition (:func:`repro.extensions.partition.compile_partition`,
    memoized per design + shape) is specialized to ``env`` and its per-band
    activity drives a banded :func:`_run`: at every wavefront step each
    tile band computes only the columns whose leading place coordinate it
    owns.  Results are bit-identical to :func:`execute_numpy_batch` -- the
    fold changes the execution order within a step, never the dataflow.
    """
    require_numpy("the npgen backend")
    from repro.analysis.wavefront import wavefront_schedule
    from repro.extensions.partition import partitioned_schedule

    if not inputs_batch:
        raise CompilationError("execute_numpy_banded needs at least one input set")
    schedule = wavefront_schedule(sp, env, use_cache=use_cache)
    partition = partitioned_schedule(sp, env, shape, use_cache=use_cache)
    dense_states = [
        initial_state(sp.source, env, inputs) for inputs in inputs_batch
    ]
    if dtype is None:
        dtype = _pick_dtype(dense_states)
    plan = _plan_for(schedule, sp.source.body)
    arrays = _states_to_arrays(schedule, dense_states, dtype)
    _run_banded(schedule, plan, arrays, _banded_cols(schedule, partition))
    exact = dtype is object
    return [
        _arrays_to_state(schedule, arrays, b, exact)
        for b in range(len(dense_states))
    ]


def execute_numpy(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs=None,
    *,
    dtype=None,
    use_cache: bool = True,
) -> dict:
    """Render nothing, simulate nothing: one vectorized wavefront run.

    Drop-in result-compatible with
    :func:`~repro.target.pygen.execute_python` -- same tuple-keyed final
    contents, same values -- but executed as whole-wavefront NumPy array
    operations, which is what lets ``n`` reach the hundreds-to-thousands.
    """
    return execute_numpy_batch(
        sp, env, [inputs], dtype=dtype, use_cache=use_cache
    )[0]


def schedule_cache_stats() -> dict:
    """Hit/miss/eviction counters of the shared wavefront-schedule cache."""
    from repro.analysis.wavefront import SCHEDULE_CACHE

    return SCHEDULE_CACHE.stats()
