"""Rendering the abstract target program in the paper's notation.

The output mirrors the generated programs of Appendices D and E: a ``par``
of computation processes (a ``parfor`` over the process space), boundary
input/output processes, and buffer processes, with repeaters written
``{first last increment}`` and case analyses written ``if G -> e [] .. fi``.
"""

from __future__ import annotations

from repro.symbolic.affine import AffineVec
from repro.symbolic.piecewise import Piecewise
from repro.target.ast import (
    ComputeLoop,
    DrainPhase,
    LoadPhase,
    RecoverPhase,
    SoakPhase,
    TargetProgram,
    TargetRepeater,
)


def _leaf(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, Piecewise):
        return format_piecewise(value)
    if isinstance(value, AffineVec):
        return "(" + ", ".join(str(a) for a in value) + ")"
    return str(value)


def format_piecewise(pw: Piecewise) -> str:
    """One-line ``if G0 -> e0 [] G1 -> e1 [] else -> null fi``."""
    collapsed = pw.collapse()
    if not isinstance(collapsed, Piecewise):
        return _leaf(collapsed)
    parts = [f"{c.guard} -> {_leaf(c.value)}" for c in pw.cases]
    if pw.has_default:
        parts.append(f"else -> {_leaf(pw.default)}")
    return "if " + "  []  ".join(parts) + " fi"


def format_repeater(rep: TargetRepeater) -> str:
    inc = "(" + ", ".join(str(c) for c in rep.increment) + ")"
    return f"{{{format_piecewise(rep.first)}  {format_piecewise(rep.last)}  {inc}}}"


def _vec(v: AffineVec) -> str:
    return "(" + ", ".join(str(a) for a in v) + ")"


def render_paper(tp: TargetProgram) -> str:
    """The whole program in the paper's abstract notation."""
    coords = ", ".join(tp.coords)
    lines: list[str] = [
        f"-- systolic program for '{tp.name}' on array '{tp.array_name}'",
        f"-- process space PS: {_vec(tp.ps_min)} .. {_vec(tp.ps_max)}",
    ]
    for ch in tp.channels:
        kind = "stationary" if ch.stationary else f"hop {tuple(ch.hop)}"
        lines.append(
            f"-- stream {ch.stream}: {kind}, {ch.latches} latch buffer(s) per link"
        )
    lines.append("")
    lines.append("par")
    lines.append("  -- Computation Processes (CS)")
    lines.append(f"  parfor {coords} in {_vec(tp.ps_min)} .. {_vec(tp.ps_max)} if in CS")
    for phase in tp.compute.phases:
        lines.extend(_phase_lines(phase))
    lines.append("  end parfor")
    lines.append("")
    lines.append("  -- Input Processes (one per pipe head)")
    for io in tp.inputs:
        lines.append(f"  in {io.stream} : {format_repeater(io.repeater)}")
    lines.append("")
    lines.append("  -- Output Processes (one per pipe tail)")
    for io in tp.outputs:
        lines.append(f"  out {io.stream} : {format_repeater(io.repeater)}")
    lines.append("")
    lines.append("  -- Buffer Processes (PS \\ CS)")
    lines.append(f"  parfor {coords} in PS \\ CS")
    lines.append("    par")
    for stream, amount in tp.buffer.passes:
        lines.append(f"      pass {stream}, {format_piecewise(amount)}")
    lines.append("    end par")
    lines.append("  end parfor")
    lines.append("end par")
    return "\n".join(lines)


def _phase_lines(phase) -> list[str]:
    pad = "    "
    if isinstance(phase, LoadPhase):
        return [
            f"{pad}load {phase.stream}",
            f"{pad}pass {phase.stream}, {format_piecewise(phase.passes)}",
        ]
    if isinstance(phase, SoakPhase):
        return [f"{pad}pass {phase.stream}, {format_piecewise(phase.amount)}"]
    if isinstance(phase, ComputeLoop):
        out = [f"{pad}{format_repeater(phase.repeater)} :"]
        if phase.recv_streams:
            recvs = " || ".join(f"{s}?{s}" for s in phase.recv_streams)
            out.append(f"{pad}    par {recvs} end par")
        for branch in phase.body.branches:
            stmt = "; ".join(str(a) for a in branch.assigns)
            if branch.condition is not None:
                stmt = f"if {branch.condition} -> {stmt} fi"
            out.append(f"{pad}    {stmt}")
        if phase.send_streams:
            sends = " || ".join(f"{s}!{s}" for s in phase.send_streams)
            out.append(f"{pad}    par {sends} end par")
        return out
    if isinstance(phase, DrainPhase):
        return [f"{pad}pass {phase.stream}, {format_piecewise(phase.amount)}"]
    if isinstance(phase, RecoverPhase):
        return [
            f"{pad}pass {phase.stream}, {format_piecewise(phase.passes)}",
            f"{pad}recover {phase.stream}",
        ]
    raise TypeError(f"unknown phase {phase!r}")
