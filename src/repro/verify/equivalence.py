"""Sequential-vs-systolic equivalence checking.

The paper validated its scheme by hand-translating the generated programs
to occam and C and running them on real machines ("In all cases, the only
errors were mistakes made in the hand translation").  Here the whole loop
is mechanical: compile, lower, execute on the simulator, and compare every
element of every variable against the sequential reference interpreter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.core.scheme import compile_systolic
from repro.geometry.point import Point
from repro.lang.expr import RuntimeValue
from repro.lang.interpreter import run_sequential
from repro.lang.program import SourceProgram
from repro.runtime.network import execute
from repro.runtime.scheduler import SchedulerStats
from repro.symbolic.affine import Numeric
from repro.systolic.spec import SystolicArray
from repro.util.errors import VerificationError


def random_inputs(
    program: SourceProgram,
    env: Mapping[str, Numeric],
    *,
    seed: int = 0,
    low: int = -9,
    high: int = 9,
    zero_for_written: bool = True,
) -> dict[str, dict[Point, RuntimeValue]]:
    """Deterministic pseudo-random integer contents for every variable.

    Streams that the basic statement writes are zero-initialised by default
    (the usual accumulator convention of the paper's examples).
    """
    rng = random.Random(seed)
    written = program.body.streams_written()
    inputs: dict[str, dict[Point, RuntimeValue]] = {}
    for var in program.variables:
        space = var.space(env)
        if zero_for_written and var.name in written:
            inputs[var.name] = {p: 0 for p in space}
        else:
            inputs[var.name] = {p: rng.randint(low, high) for p in space}
    return inputs


#: Execution engines verify_design can drive (simulator is the default).
BACKENDS = ("sim", "pygen", "npgen")


@dataclass
class VerificationReport:
    """Outcome of one verified execution."""

    env: dict
    matched: bool
    stats: SchedulerStats | None
    mismatches: list[str] = field(default_factory=list)
    backend: str = "sim"

    def __str__(self) -> str:
        status = "OK" if self.matched else f"MISMATCH ({len(self.mismatches)})"
        if self.stats is None:
            return f"verify[{self.backend}] {self.env}: {status}"
        return (
            f"verify {self.env}: {status}, makespan {self.stats.makespan}, "
            f"{self.stats.total_messages} messages, "
            f"{self.stats.process_count} processes"
        )


def _execute_backend(backend, sp, env, inputs, channel_capacity, partition=None):
    """Run one engine; returns (tuple-keyed final contents, stats or None).

    ``partition`` (an array shape ``(p,)`` or ``(p, q)``) folds the run
    onto a fixed physical array: the simulator uses the partitioned
    process network (:func:`repro.extensions.partition.partitioned_execute`),
    npgen the banded batched executor.  pygen has no partitioned mode.
    """
    if backend == "sim":
        if partition is not None:
            from repro.extensions.partition import partitioned_execute

            final, stats = partitioned_execute(
                sp, env, inputs, shape=partition, channel_capacity=channel_capacity
            )
        else:
            final, stats = execute(
                sp, env, inputs, channel_capacity=channel_capacity
            )
        return (
            {v: {tuple(p): val for p, val in vals.items()}
             for v, vals in final.items()},
            stats,
        )
    if backend == "pygen":
        if partition is not None:
            raise VerificationError(
                "the pygen backend has no partitioned execution mode; "
                "use backend='sim' or backend='npgen'"
            )
        from repro.target.pygen import execute_python

        return execute_python(sp, env, inputs), None
    if backend == "npgen":
        if partition is not None:
            from repro.target.npgen import execute_numpy_banded

            return execute_numpy_banded(sp, env, [inputs], shape=partition)[0], None
        from repro.target.npgen import execute_numpy

        return execute_numpy(sp, env, inputs), None
    raise VerificationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )


def verify_design(
    program: SourceProgram,
    array: SystolicArray,
    env: Mapping[str, Numeric],
    inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    *,
    compiled: SystolicProgram | None = None,
    channel_capacity: int = 1,
    seed: int = 0,
    raise_on_mismatch: bool = True,
    backend: str = "sim",
    partition: tuple[int, ...] | None = None,
) -> VerificationReport:
    """Compile (unless given), execute on ``backend`` and compare vs oracle.

    ``backend`` selects the execution engine: ``"sim"`` (the coroutine
    process-network simulator, with scheduler stats), ``"pygen"`` (the
    rendered standalone Python module) or ``"npgen"`` (the vectorized
    NumPy wavefront backend; requires the optional NumPy extra).

    ``partition`` folds the execution onto a fixed physical array of that
    shape (``(p,)`` bands or ``(p, q)`` tiles) via the symbolically
    compiled LSGP partition; supported on ``sim`` and ``npgen``.
    """
    sp = compiled if compiled is not None else compile_systolic(program, array)
    if inputs is None:
        inputs = random_inputs(program, env, seed=seed)
    final, stats = _execute_backend(
        backend, sp, env, inputs, channel_capacity, partition=partition
    )
    oracle = run_sequential(program, env, inputs)
    mismatches: list[str] = []
    for var, expected in oracle.items():
        got = final[var]
        for element, value in expected.items():
            if got.get(tuple(element)) != value:
                mismatches.append(
                    f"{var}{element}: systolic {got.get(tuple(element))}, "
                    f"oracle {value}"
                )
    report = VerificationReport(
        env=dict(env),
        matched=not mismatches,
        stats=stats,
        mismatches=mismatches,
        backend=backend,
    )
    if mismatches and raise_on_mismatch:
        preview = "; ".join(mismatches[:5])
        raise VerificationError(
            f"systolic program disagrees with the oracle at {dict(env)}: {preview}"
        )
    return report


def verify_design_batch(
    program: SourceProgram,
    array: SystolicArray,
    env: Mapping[str, Numeric],
    *,
    compiled: SystolicProgram | None = None,
    input_sets: int = 1,
    seed: int = 0,
    channel_capacity: int = 1,
    backend: str = "sim",
    raise_on_mismatch: bool = True,
) -> list[VerificationReport]:
    """Verify one design against the oracle over many input sets.

    The design is compiled once and every input set (seeds ``seed`` ..
    ``seed + input_sets - 1``) is checked against its own sequential-oracle
    run.  ``"npgen"`` executes all sets in a single batched wavefront pass
    (one schedule, stacked arrays); ``"sim"`` reuses the pre-bound network
    plan across sets and ``"pygen"`` the cached compiled module, so each
    additional set only pays execution, never recompilation.
    """
    if input_sets < 1:
        raise VerificationError(
            f"input_sets must be >= 1, got {input_sets}"
        )
    sp = compiled if compiled is not None else compile_systolic(program, array)
    seeds = [seed + k for k in range(input_sets)]
    all_inputs = [random_inputs(program, env, seed=s) for s in seeds]

    if backend == "npgen":
        from repro.target.npgen import execute_numpy_batch

        finals = execute_numpy_batch(sp, env, all_inputs)
        stats_per_set: list[SchedulerStats | None] = [None] * input_sets
    else:
        finals, stats_per_set = [], []
        for inputs in all_inputs:
            final, stats = _execute_backend(
                backend, sp, env, inputs, channel_capacity
            )
            finals.append(final)
            stats_per_set.append(stats)

    reports = []
    for inputs, final, stats in zip(all_inputs, finals, stats_per_set):
        oracle = run_sequential(program, env, inputs)
        mismatches = [
            f"{var}{element}: systolic {final[var].get(tuple(element))}, "
            f"oracle {value}"
            for var, expected in oracle.items()
            for element, value in expected.items()
            if final[var].get(tuple(element)) != value
        ]
        reports.append(
            VerificationReport(
                env=dict(env),
                matched=not mismatches,
                stats=stats,
                mismatches=mismatches,
                backend=backend,
            )
        )
    bad = [r for r in reports if not r.matched]
    if bad and raise_on_mismatch:
        preview = "; ".join(bad[0].mismatches[:5])
        raise VerificationError(
            f"systolic program disagrees with the oracle on "
            f"{len(bad)}/{input_sets} input sets at {dict(env)}: {preview}"
        )
    return reports
