"""Sequential-vs-systolic equivalence checking.

The paper validated its scheme by hand-translating the generated programs
to occam and C and running them on real machines ("In all cases, the only
errors were mistakes made in the hand translation").  Here the whole loop
is mechanical: compile, lower, execute on the simulator, and compare every
element of every variable against the sequential reference interpreter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.core.scheme import compile_systolic
from repro.geometry.point import Point
from repro.lang.expr import RuntimeValue
from repro.lang.interpreter import run_sequential
from repro.lang.program import SourceProgram
from repro.runtime.network import execute
from repro.runtime.scheduler import SchedulerStats
from repro.symbolic.affine import Numeric
from repro.systolic.spec import SystolicArray
from repro.util.errors import VerificationError


def random_inputs(
    program: SourceProgram,
    env: Mapping[str, Numeric],
    *,
    seed: int = 0,
    low: int = -9,
    high: int = 9,
    zero_for_written: bool = True,
) -> dict[str, dict[Point, RuntimeValue]]:
    """Deterministic pseudo-random integer contents for every variable.

    Streams that the basic statement writes are zero-initialised by default
    (the usual accumulator convention of the paper's examples).
    """
    rng = random.Random(seed)
    written = program.body.streams_written()
    inputs: dict[str, dict[Point, RuntimeValue]] = {}
    for var in program.variables:
        space = var.space(env)
        if zero_for_written and var.name in written:
            inputs[var.name] = {p: 0 for p in space}
        else:
            inputs[var.name] = {p: rng.randint(low, high) for p in space}
    return inputs


@dataclass
class VerificationReport:
    """Outcome of one verified execution."""

    env: dict
    matched: bool
    stats: SchedulerStats
    mismatches: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "OK" if self.matched else f"MISMATCH ({len(self.mismatches)})"
        return (
            f"verify {self.env}: {status}, makespan {self.stats.makespan}, "
            f"{self.stats.total_messages} messages, "
            f"{self.stats.process_count} processes"
        )


def verify_design(
    program: SourceProgram,
    array: SystolicArray,
    env: Mapping[str, Numeric],
    inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    *,
    compiled: SystolicProgram | None = None,
    channel_capacity: int = 1,
    seed: int = 0,
    raise_on_mismatch: bool = True,
) -> VerificationReport:
    """Compile (unless given), execute and compare against the oracle."""
    sp = compiled if compiled is not None else compile_systolic(program, array)
    if inputs is None:
        inputs = random_inputs(program, env, seed=seed)
    final, stats = execute(sp, env, inputs, channel_capacity=channel_capacity)
    oracle = run_sequential(program, env, inputs)
    mismatches: list[str] = []
    for var, expected in oracle.items():
        got = final[var]
        for element, value in expected.items():
            if got.get(element) != value:
                mismatches.append(
                    f"{var}{element}: systolic {got.get(element)}, oracle {value}"
                )
    report = VerificationReport(
        env=dict(env), matched=not mismatches, stats=stats, mismatches=mismatches
    )
    if mismatches and raise_on_mismatch:
        preview = "; ".join(mismatches[:5])
        raise VerificationError(
            f"systolic program disagrees with the oracle at {dict(env)}: {preview}"
        )
    return report
