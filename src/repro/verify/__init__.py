"""Verification: oracle equivalence and executable theorems.

:mod:`repro.verify.equivalence` runs a compiled design on the simulator and
compares every variable against the sequential interpreter -- the mechanical
version of the paper's hand-checked transputer runs.
:mod:`repro.verify.theorems` states Theorems 1-11 of Appendix B as
executable checks over a concrete design and problem size.
"""

from repro.verify.equivalence import (
    BACKENDS,
    VerificationReport,
    random_inputs,
    verify_design,
    verify_design_batch,
)
from repro.verify.theorems import check_all_theorems, THEOREM_CHECKS
from repro.verify.enumerative import CrossCheckReport, cross_check

__all__ = [
    "BACKENDS",
    "VerificationReport",
    "verify_design",
    "verify_design_batch",
    "random_inputs",
    "check_all_theorems",
    "THEOREM_CHECKS",
    "CrossCheckReport",
    "cross_check",
]
