"""Enumerative cross-checking of the symbolic derivations.

For a concrete problem size, every quantity the scheme derives symbolically
can also be computed by brute force straight from the definitions of
Section 6: enumerate the index space, group statements into chords, order
them by ``step``, collect pipe element sets.  This module does exactly
that and compares, point by point:

* ``first``/``last``/``count``  vs the step-extremes of each chord;
* ``CS`` membership             vs chord non-emptiness;
* ``first_s``/``last_s``/Eq. 10 vs the enumerated pipe element sets;
* soak/drain                    vs the position of each process's first and
                                 last used element within its pipe.

It is the tool to reach for when a hand-built design misbehaves: a clean
:class:`CrossCheckReport` isolates which derived artefact disagrees with
the definitions.  The whole test suite's strongest invariants are built on
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.program import SystolicProgram
from repro.geometry.lattice import Line, integer_direction
from repro.geometry.point import Point, dot
from repro.symbolic.affine import Numeric


@dataclass
class CrossCheckReport:
    """Discrepancies between symbolic closed forms and enumeration."""

    env: dict
    chords_checked: int = 0
    pipes_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.errors)} discrepancies"
        return (
            f"cross-check {self.env}: {status} "
            f"({self.chords_checked} chords, {self.pipes_checked} pipes)"
        )


def cross_check(sp: SystolicProgram, env: Mapping[str, Numeric]) -> CrossCheckReport:
    """Compare every symbolic artefact with its enumerated definition."""
    report = CrossCheckReport(env=dict(env))
    program, array = sp.source, sp.array
    index_space = program.index_space(env)
    space = sp.process_space(env)

    chords: dict[Point, list[Point]] = {}
    for x in index_space:
        chords.setdefault(array.place_of(x), []).append(x)

    # ---- chords: first / last / count / CS membership -----------------
    for y in space:
        binding = sp.bind(y, env)
        chord = chords.get(y)
        in_cs = sp.in_computation_space(y, env)
        if chord is None:
            if in_cs:
                report.errors.append(f"{y}: claimed in CS but chord is empty")
            continue
        report.chords_checked += 1
        if not in_cs:
            report.errors.append(f"{y}: has {len(chord)} statements but not in CS")
            continue
        by_step = sorted(chord, key=lambda x: array.step_of(x))
        first = sp.first.evaluate(binding)
        last = sp.last.evaluate(binding)
        count = sp.count.evaluate(binding)
        if first != by_step[0]:
            report.errors.append(f"{y}: first {first} != {by_step[0]}")
        if last != by_step[-1]:
            report.errors.append(f"{y}: last {last} != {by_step[-1]}")
        if count != len(chord):
            report.errors.append(f"{y}: count {count} != {len(chord)}")

    # ---- pipes: endpoints, Eq. 10, soak/drain --------------------------
    for plan in sp.streams:
        direction = integer_direction(plan.transport)
        seen: set[Point] = set()
        for y in space:
            if y in seen:
                continue
            line = Line(y, direction)
            pipe = list(line.lattice_points_between(space.lo, space.hi))
            seen.update(pipe)
            report.pipes_checked += 1
            elements: set[Point] = set()
            for z in pipe:
                for x in chords.get(z, []):
                    elements.add(plan.stream.element_of(x))
            binding0 = sp.bind(pipe[0], env)
            total = plan.pass_amount.evaluate(binding0)
            first_s = plan.first_s.evaluate(binding0)
            last_s = plan.last_s.evaluate(binding0)
            if not elements:
                # derived endpoints may be junk off-CS; the runtime guards
                # this by chain/CS intersection, so only flag a non-null
                # claim when it is integral (i.e. pretends to be real)
                continue
            ordered = sorted(elements, key=lambda e: dot(e, plan.increment_s))
            if total != len(elements):
                report.errors.append(
                    f"{plan.name} pipe at {pipe[0]}: Eq.10 {total} != "
                    f"{len(elements)} elements"
                )
            if first_s != ordered[0]:
                report.errors.append(
                    f"{plan.name} pipe at {pipe[0]}: first_s {first_s} != {ordered[0]}"
                )
            if last_s != ordered[-1]:
                report.errors.append(
                    f"{plan.name} pipe at {pipe[0]}: last_s {last_s} != {ordered[-1]}"
                )
            index_of = {e: i for i, e in enumerate(ordered)}
            for z in pipe:
                chord = chords.get(z)
                if not chord or not sp.in_computation_space(z, env):
                    continue
                binding = sp.bind(z, env)
                by_step = sorted(chord, key=lambda x: array.step_of(x))
                used_first = plan.stream.element_of(by_step[0])
                used_last = plan.stream.element_of(by_step[-1])
                soak = plan.soak.evaluate(binding)
                drain = plan.drain.evaluate(binding)
                if soak != index_of[used_first]:
                    report.errors.append(
                        f"{plan.name} at {z}: soak {soak} != {index_of[used_first]}"
                    )
                if drain != len(ordered) - 1 - index_of[used_last]:
                    report.errors.append(
                        f"{plan.name} at {z}: drain {drain} != "
                        f"{len(ordered) - 1 - index_of[used_last]}"
                    )
    return report
