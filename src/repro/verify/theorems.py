"""Appendix B's Theorems 1-11 as executable checks.

Each check takes a (program, array, concrete size) triple and verifies the
theorem's statement exhaustively over the instantiated spaces, raising
:class:`VerificationError` with the theorem number on failure.  These are
*checks of instances*, complementing the paper's symbolic proofs: they
exercise the same definitions the compiler uses, so a disagreement flags a
faithful-implementation bug.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.core.increment import derive_increment
from repro.core.io_comm import derive_stream_increment
from repro.geometry.lattice import lattice_points_on_vector, Line
from repro.geometry.point import Point, dot, gcd_reduce, sgn
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.systolic.flow import stream_flow
from repro.systolic.spec import SystolicArray
from repro.util.errors import VerificationError

Check = Callable[[SourceProgram, SystolicArray, Mapping[str, Numeric]], None]


def _fail(number: int, message: str) -> None:
    raise VerificationError(f"Theorem {number} violated: {message}")


def theorem_1_null_dimension(program, array, env) -> None:
    """dim(null.place) = 1."""
    basis = array.place.null_space_basis()
    if len(basis) != 1:
        _fail(1, f"null space has dimension {len(basis)}")


def theorem_3_step_nonzero_on_null(program, array, env) -> None:
    """step.null_p != 0."""
    null_p = array.null_place()
    if array.step.apply_point(null_p)[0] == 0:
        _fail(3, f"step({null_p}) == 0")


def theorem_4_chords_are_lines(program, array, env) -> None:
    """All points projected by place onto any y lie on a straight line."""
    null_p = array.null_place()
    chords: dict[Point, list[Point]] = {}
    for x in program.index_space(env):
        chords.setdefault(array.place_of(x), []).append(x)
    for y, chord in chords.items():
        base = chord[0]
        line = Line(base, null_p)
        for x in chord:
            if not line.contains(x):
                _fail(4, f"chord of {y} leaves the line at {x}")


def theorem_5_increment_in_null_place(program, array, env) -> None:
    inc = derive_increment(array, enforce_restriction=False)
    if not array.place_of(inc).is_zero:
        _fail(5, f"place({inc}) != 0")


def theorem_6_increment_forward(program, array, env) -> None:
    inc = derive_increment(array, enforce_restriction=False)
    if array.step.apply_point(inc)[0] <= 0:
        _fail(6, f"step({inc}) <= 0")


def theorem_7_lattice_points(program, array, env) -> None:
    """A vector x holds gcd(x)+1 lattice points, at (m/k)*x."""
    inc = derive_increment(array, enforce_restriction=False)
    for scale in (1, 2, 3):
        x = inc * scale
        _, k = gcd_reduce(x)
        pts = lattice_points_on_vector(x)
        if len(pts) != k + 1:
            _fail(7, f"{x}: {len(pts)} points, expected {k + 1}")


def theorem_8_sign_relation(program, array, env) -> None:
    """sgn(x.i - x'.i) = sgn(step.x - step.x') * sgn(increment.i) for
    co-located statements."""
    inc = derive_increment(array, enforce_restriction=False)
    chords: dict[Point, list[Point]] = {}
    for x in program.index_space(env):
        chords.setdefault(array.place_of(x), []).append(x)
    for chord in chords.values():
        for x in chord:
            for x2 in chord:
                step_sign = sgn(array.step_of(x) - array.step_of(x2))
                for i in range(program.r):
                    left = sgn(x[i] - x2[i])
                    right = step_sign * sgn(inc[i])
                    if left != right:
                        _fail(8, f"{x} vs {x2}, axis {i}: {left} != {right}")


def theorem_9_injectivity(program, array, env) -> None:
    """If increment.i != 0, place is injective on each hyperplane x.i = c."""
    inc = derive_increment(array, enforce_restriction=False)
    points = list(program.index_space(env))
    for i in range(program.r):
        if inc[i] == 0:
            continue
        seen: dict[tuple, Point] = {}
        for x in points:
            key = (x[i], array.place_of(x))
            if key in seen and seen[key] != x:
                _fail(9, f"place({seen[key]}) == place({x}) with equal x.{i}")
            seen[key] = x


def theorem_10_flow_single_valued(program, array, env) -> None:
    """flow.s is independent of the element and statement pair chosen."""
    for s in program.streams:
        flow = stream_flow(array, s)
        by_element: dict[Point, list[Point]] = {}
        for x in program.index_space(env):
            by_element.setdefault(s.element_of(x), []).append(x)
        for element, ops in by_element.items():
            for a in ops:
                for b in ops:
                    dstep = array.step_of(b) - array.step_of(a)
                    if dstep == 0:
                        continue
                    observed = (array.place_of(b) - array.place_of(a)) / dstep
                    if observed != flow:
                        _fail(
                            10,
                            f"stream {s.name}, element {element}: flow "
                            f"{observed} from ({a},{b}) != {flow}",
                        )


def theorem_11_stream_increment(program, array, env) -> None:
    """increment_s = M . increment: consecutive statements of a process use
    consecutive stream elements."""
    inc = derive_increment(array, enforce_restriction=False)
    for s in program.streams:
        expected = s.index_map.apply_point(inc)
        derived = derive_stream_increment(s, inc, array)
        if not expected.is_zero and derived != expected:
            _fail(11, f"stream {s.name}: {derived} != M.increment = {expected}")
        for x in program.index_space(env):
            nxt = x + inc
            if nxt not in program.index_space(env):
                continue
            if s.element_of(nxt) - s.element_of(x) != expected:
                _fail(11, f"stream {s.name} at {x}")


#: theorem number -> executable check (2 is a definition, not a claim)
THEOREM_CHECKS: dict[int, Check] = {
    1: theorem_1_null_dimension,
    3: theorem_3_step_nonzero_on_null,
    4: theorem_4_chords_are_lines,
    5: theorem_5_increment_in_null_place,
    6: theorem_6_increment_forward,
    7: theorem_7_lattice_points,
    8: theorem_8_sign_relation,
    9: theorem_9_injectivity,
    10: theorem_10_flow_single_valued,
    11: theorem_11_stream_increment,
}


def check_all_theorems(
    program: SourceProgram,
    array: SystolicArray,
    env: Mapping[str, Numeric],
) -> list[int]:
    """Run every check; returns the theorem numbers verified."""
    verified = []
    for number, check in sorted(THEOREM_CHECKS.items()):
        check(program, array, env)
        verified.append(number)
    return verified
