"""Shared utilities: error hierarchy and small helpers."""

from repro.util.errors import (
    ReproError,
    GeometryError,
    SingularMatrixError,
    SymbolicError,
    GuardError,
    SourceProgramError,
    RequirementViolation,
    RestrictionViolation,
    SystolicSpecError,
    InconsistentDistributionError,
    CompilationError,
    BackendUnsupportedError,
    MissingDependencyError,
    RuntimeSimulationError,
    DeadlockError,
    VerificationError,
)

__all__ = [
    "ReproError",
    "GeometryError",
    "SingularMatrixError",
    "SymbolicError",
    "GuardError",
    "SourceProgramError",
    "RequirementViolation",
    "RestrictionViolation",
    "SystolicSpecError",
    "InconsistentDistributionError",
    "CompilationError",
    "BackendUnsupportedError",
    "MissingDependencyError",
    "RuntimeSimulationError",
    "DeadlockError",
    "VerificationError",
    "require_numpy",
]


def require_numpy(feature: str = "this feature"):
    """Import and return :mod:`numpy`, or raise a clean install hint.

    NumPy is an *optional* extra (``pip install repro[np]``): only the
    vectorized wavefront backend and the array-flavoured examples need it.
    Every entry point that does goes through this helper so a missing
    install fails with one uniform, actionable message instead of a bare
    ``ModuleNotFoundError`` deep inside a backend.
    """
    try:
        import numpy
    except ImportError:
        raise MissingDependencyError(
            f"{feature} requires NumPy, which is not installed; "
            "install the optional extra with `pip install repro[np]` "
            "(or simply `pip install numpy`)"
        ) from None
    return numpy
