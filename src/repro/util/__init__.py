"""Shared utilities: error hierarchy and small helpers."""

from repro.util.errors import (
    ReproError,
    GeometryError,
    SingularMatrixError,
    SymbolicError,
    GuardError,
    SourceProgramError,
    RequirementViolation,
    RestrictionViolation,
    SystolicSpecError,
    InconsistentDistributionError,
    CompilationError,
    BackendUnsupportedError,
    MissingDependencyError,
    RuntimeSimulationError,
    DeadlockError,
    VerificationError,
)

__all__ = [
    "env_int",
    "ReproError",
    "GeometryError",
    "SingularMatrixError",
    "SymbolicError",
    "GuardError",
    "SourceProgramError",
    "RequirementViolation",
    "RestrictionViolation",
    "SystolicSpecError",
    "InconsistentDistributionError",
    "CompilationError",
    "BackendUnsupportedError",
    "MissingDependencyError",
    "RuntimeSimulationError",
    "DeadlockError",
    "VerificationError",
    "require_numpy",
]


def env_int(name: str, default: int, *, minimum: int | None = None) -> int:
    """Read an integer configuration knob from the environment.

    An unset or empty variable yields ``default``.  A malformed value --
    or one below ``minimum`` when given -- raises :class:`ReproError`
    *naming the variable*, instead of the bare ``ValueError`` a plain
    ``int(os.environ[...])`` would throw from deep inside whatever cache
    or pool the knob configures.
    """
    import os

    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ReproError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ReproError(
            f"environment variable {name} must be >= {minimum}, got {value}"
        )
    return value


def require_numpy(feature: str = "this feature"):
    """Import and return :mod:`numpy`, or raise a clean install hint.

    NumPy is an *optional* extra (``pip install repro[np]``): only the
    vectorized wavefront backend and the array-flavoured examples need it.
    Every entry point that does goes through this helper so a missing
    install fails with one uniform, actionable message instead of a bare
    ``ModuleNotFoundError`` deep inside a backend.
    """
    try:
        import numpy
    except ImportError:
        raise MissingDependencyError(
            f"{feature} requires NumPy, which is not installed; "
            "install the optional extra with `pip install repro[np]` "
            "(or simply `pip install numpy`)"
        ) from None
    return numpy
