"""Shared utilities: error hierarchy and small helpers."""

from repro.util.errors import (
    ReproError,
    GeometryError,
    SingularMatrixError,
    SymbolicError,
    GuardError,
    SourceProgramError,
    RequirementViolation,
    RestrictionViolation,
    SystolicSpecError,
    InconsistentDistributionError,
    CompilationError,
    RuntimeSimulationError,
    DeadlockError,
    VerificationError,
)

__all__ = [
    "ReproError",
    "GeometryError",
    "SingularMatrixError",
    "SymbolicError",
    "GuardError",
    "SourceProgramError",
    "RequirementViolation",
    "RestrictionViolation",
    "SystolicSpecError",
    "InconsistentDistributionError",
    "CompilationError",
    "RuntimeSimulationError",
    "DeadlockError",
    "VerificationError",
]
