"""Exception hierarchy for the systolizing compilation scheme.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures without masking genuine Python bugs.
The sub-hierarchy mirrors the pipeline stages: geometry / symbolic algebra,
source-program validation (Appendix A of the paper), systolic-array
specification (Section 3.2), compilation (Sections 6-7), and the distributed
runtime substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """A geometric operation was applied to incompatible operands."""


class SingularMatrixError(GeometryError):
    """A linear system had no unique solution where one was required."""


class SymbolicError(ReproError):
    """An affine/piecewise symbolic manipulation failed."""


class GuardError(SymbolicError):
    """A guard (conjunction of affine inequalities) could not be handled."""


class SourceProgramError(ReproError):
    """The source program is malformed."""


class RequirementViolation(SourceProgramError):
    """A *requirement* of Appendix A.1 is violated.

    Requirements are demanded by the nature of systolic arrays themselves
    (e.g. unit loop steps, rank ``r-1`` index maps, neighbouring flows).
    """


class RestrictionViolation(SourceProgramError):
    """A *restriction* of Appendix A.2 is violated.

    Restrictions are additional limits of the paper's method (e.g. increment
    components in ``{-1, 0, +1}``, constant-free index vectors).
    """


class SystolicSpecError(ReproError):
    """The systolic-array specification (``step``/``place``) is malformed."""


class InconsistentDistributionError(SystolicSpecError):
    """``step`` and ``place`` violate the compatibility condition (Eq. 1)."""


class CompilationError(ReproError):
    """The compilation scheme could not derive a systolic program."""


class RuntimeSimulationError(ReproError):
    """The distributed-runtime simulator detected an execution error."""


class DeadlockError(RuntimeSimulationError):
    """No process in the network can make progress."""


class VerificationError(ReproError):
    """A generated program disagreed with the sequential oracle."""


class MissingDependencyError(ReproError):
    """An optional third-party dependency is required but not installed."""


class BackendUnsupportedError(CompilationError):
    """A backend cannot execute this particular program/design.

    Raised by backends with a restricted value domain (e.g. the vectorized
    NumPy backend, which lowers to machine integers) when the program needs
    something outside it, such as fractional coefficients.  Callers that
    have a slower general backend available should fall back to it.
    """


# --- HTTP status mapping (used by the compile service) ----------------------
#
# The service daemon (``repro.service``) turns library exceptions into HTTP
# responses.  The rule of thumb follows the hierarchy above: errors caused by
# the *request contents* (malformed source program, inconsistent design
# spec, bad symbolic forms the client submitted) are 4xx; errors caused by
# the *server's* inability to carry out a well-formed request (compilation
# scheme limits, missing optional backends, runtime faults) are 422/5xx.

#: Most-derived-first (exception, status) mapping; order matters because
#: ``BackendUnsupportedError`` derives from ``CompilationError``.
_HTTP_STATUS_MAP: "tuple[tuple[type[BaseException], int], ...]" = (
    (MissingDependencyError, 501),  # backend not installed on this server
    (BackendUnsupportedError, 422),  # well-formed, outside backend's domain
    (VerificationError, 422),  # request asked for an impossible check
    (DeadlockError, 500),  # runtime fault while serving
    (RuntimeSimulationError, 500),
    (CompilationError, 422),  # valid input the scheme cannot systolize
    (SourceProgramError, 400),  # the client's program is malformed
    (SystolicSpecError, 400),  # the client's step/place spec is malformed
    (SymbolicError, 400),
    (GeometryError, 400),
    (ReproError, 400),  # default: the request was the problem
)


def http_status(exc: BaseException) -> int:
    """The HTTP status code the compile service reports for ``exc``.

    Library errors map onto 4xx/422/501 per the table above; anything that
    is not a :class:`ReproError` is an internal server error (500).
    """
    for exc_type, status in _HTTP_STATUS_MAP:
        if isinstance(exc, exc_type):
            return status
    return 500
