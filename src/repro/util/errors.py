"""Exception hierarchy for the systolizing compilation scheme.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures without masking genuine Python bugs.
The sub-hierarchy mirrors the pipeline stages: geometry / symbolic algebra,
source-program validation (Appendix A of the paper), systolic-array
specification (Section 3.2), compilation (Sections 6-7), and the distributed
runtime substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """A geometric operation was applied to incompatible operands."""


class SingularMatrixError(GeometryError):
    """A linear system had no unique solution where one was required."""


class SymbolicError(ReproError):
    """An affine/piecewise symbolic manipulation failed."""


class GuardError(SymbolicError):
    """A guard (conjunction of affine inequalities) could not be handled."""


class SourceProgramError(ReproError):
    """The source program is malformed."""


class RequirementViolation(SourceProgramError):
    """A *requirement* of Appendix A.1 is violated.

    Requirements are demanded by the nature of systolic arrays themselves
    (e.g. unit loop steps, rank ``r-1`` index maps, neighbouring flows).
    """


class RestrictionViolation(SourceProgramError):
    """A *restriction* of Appendix A.2 is violated.

    Restrictions are additional limits of the paper's method (e.g. increment
    components in ``{-1, 0, +1}``, constant-free index vectors).
    """


class SystolicSpecError(ReproError):
    """The systolic-array specification (``step``/``place``) is malformed."""


class InconsistentDistributionError(SystolicSpecError):
    """``step`` and ``place`` violate the compatibility condition (Eq. 1)."""


class CompilationError(ReproError):
    """The compilation scheme could not derive a systolic program."""


class RuntimeSimulationError(ReproError):
    """The distributed-runtime simulator detected an execution error."""


class DeadlockError(RuntimeSimulationError):
    """No process in the network can make progress."""


class VerificationError(ReproError):
    """A generated program disagreed with the sequential oracle."""


class MissingDependencyError(ReproError):
    """An optional third-party dependency is required but not installed."""


class BackendUnsupportedError(CompilationError):
    """A backend cannot execute this particular program/design.

    Raised by backends with a restricted value domain (e.g. the vectorized
    NumPy backend, which lowers to machine integers) when the program needs
    something outside it, such as fractional coefficients.  Callers that
    have a slower general backend available should fall back to it.
    """
