"""A small textual front end for source programs.

The concrete syntax follows the paper's notation as closely as plain text
allows::

    program polyprod
    size n
    var a[0..n], b[0..n], c[0..2*n]
    for i = 0 <- 1 -> n
    for j = 0 <- 1 -> n
        c[i+j] := c[i+j] + a[i] * b[j]

* ``size`` declares the problem-size symbols.
* ``var`` declares indexed variables with inclusive affine bounds.
* ``for x = lb <- st -> rb`` declares one loop; ``st`` is ``1`` or ``-1``.
* The body is one or more statements: plain assignments
  ``v[subscripts] := expr`` or guarded ones ``if <cond> -> v[...] := expr``.

Every occurrence ``v[e_0, ..., e_{d-1}]`` of a variable must use the same
index vector (multiple-occurrence criteria of the paper's reference [2]);
the parser derives the stream's index map from it.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Iterator, Sequence

from repro.geometry.linalg import Matrix
from repro.lang.expr import (
    Assign,
    BinOp,
    Body,
    Branch,
    Condition,
    Const,
    Expr,
    StreamRead,
)
from repro.lang.program import Loop, SourceProgram
from repro.lang.stream import Stream
from repro.lang.variables import IndexedVariable
from repro.symbolic.affine import Affine
from repro.symbolic.minmax import Bound, bound_args, extremum
from repro.util.errors import SourceProgramError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>:=|<-|->|\.\.|<=|>=|==|!=|[-+*/,\[\]()<>=])"
    r")"
)


def tokenize(text: str) -> list[str]:
    """Split a line into tokens; raises on garbage."""
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            rest = text[pos:].strip()
            if not rest:
                break
            raise SourceProgramError(f"cannot tokenize {rest!r}")
        tokens.append(m.group(m.lastgroup))  # type: ignore[arg-type]
        pos = m.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[str], context: str) -> None:
        self.tokens = list(tokens)
        self.pos = 0
        self.context = context

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise SourceProgramError(f"unexpected end of input in {self.context!r}")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        tok = self.next()
        if tok != token:
            raise SourceProgramError(
                f"expected {token!r}, got {tok!r} in {self.context!r}"
            )

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


# ----------------------------------------------------------------------
# affine expression parsing (for bounds, subscripts, guards)
# ----------------------------------------------------------------------

def _parse_affine_atom(ts: _TokenStream) -> Affine:
    tok = ts.next()
    if tok == "(":
        e = _parse_affine_sum(ts)
        ts.expect(")")
        return e
    if tok == "-":
        return -_parse_affine_atom(ts)
    if tok.isdigit():
        value: Affine = Affine.constant(int(tok))
    elif tok.isidentifier():
        value = Affine.var(tok)
    else:
        raise SourceProgramError(f"unexpected token {tok!r} in affine expression")
    return value


def _parse_affine_term(ts: _TokenStream) -> Affine:
    left = _parse_affine_atom(ts)
    while ts.peek() in ("*", "/"):
        op = ts.next()
        right = _parse_affine_atom(ts)
        if op == "*":
            left = left * right  # Affine.__mul__ enforces affinity
        else:
            left = left / right
    return left


def _parse_affine_sum(ts: _TokenStream) -> Affine:
    left = _parse_affine_term(ts)
    while ts.peek() in ("+", "-"):
        op = ts.next()
        right = _parse_affine_term(ts)
        left = left + right if op == "+" else left - right
    return left


def parse_affine(text: str) -> Affine:
    """Parse an affine expression, e.g. ``"2*n - 1"``."""
    ts = _TokenStream(tokenize(text), text)
    e = _parse_affine_sum(ts)
    if not ts.at_end():
        raise SourceProgramError(f"trailing tokens in affine expression {text!r}")
    return e


def _parse_bound(ts: _TokenStream, expected_kind: str, what: str) -> Bound:
    """Parse a loop/variable bound: an affine sum or ``min``/``max`` form.

    ``expected_kind`` is ``"max"`` for lower bounds and ``"min"`` for
    upper bounds; the other kind is a :class:`SourceProgramError` (it
    would make the bound's membership test disjunctive, which the scheme
    does not admit).
    """
    tok = ts.peek()
    if tok in ("min", "max") and ts.tokens[ts.pos + 1 : ts.pos + 2] == ["("]:
        kind = ts.next()
        if kind != expected_kind:
            raise SourceProgramError(
                f"{what} may use {expected_kind}(...), not {kind}(...)"
            )
        ts.expect("(")
        args = [_parse_affine_sum(ts)]
        while ts.peek() == ",":
            ts.next()
            args.append(_parse_affine_sum(ts))
        ts.expect(")")
        if len(args) < 2:
            raise SourceProgramError(
                f"{what}: {kind}() needs at least two arguments"
            )
        return extremum(kind, args)
    return _parse_affine_sum(ts)


# ----------------------------------------------------------------------
# value expression parsing (basic-statement bodies)
# ----------------------------------------------------------------------

class _BodyParser:
    """Parses value expressions; records variable occurrences it sees."""

    def __init__(self, loop_indices: Sequence[str], variables: dict[str, IndexedVariable]):
        self.loop_indices = list(loop_indices)
        self.variables = variables
        #: name -> index map rows observed (must all agree)
        self.occurrences: dict[str, tuple[tuple[int, ...], ...]] = {}

    def _subscript_rows(self, name: str, subs: list[Affine]) -> tuple[tuple[int, ...], ...]:
        rows: list[tuple[int, ...]] = []
        for e in subs:
            extraneous = e.free_symbols.difference(self.loop_indices)
            if extraneous:
                raise SourceProgramError(
                    f"{name}: subscript {e} uses non-loop symbols {sorted(extraneous)}"
                )
            if e.const != 0:
                raise SourceProgramError(
                    f"{name}: subscript {e} contains a constant "
                    "(restricted by the scheme, Appendix A.2)"
                )
            row = []
            for idx in self.loop_indices:
                c = e.coeff(idx)
                if c.denominator != 1:
                    raise SourceProgramError(
                        f"{name}: subscript {e} has non-integer coefficient {c}"
                    )
                row.append(int(c))
            rows.append(tuple(row))
        return tuple(rows)

    def _record_occurrence(self, name: str, rows: tuple[tuple[int, ...], ...]) -> None:
        prior = self.occurrences.get(name)
        if prior is None:
            self.occurrences[name] = rows
        elif prior != rows:
            raise SourceProgramError(
                f"variable {name} is accessed with two different index vectors; "
                "all occurrences must agree"
            )

    def parse_ref(self, ts: _TokenStream, name: str) -> StreamRead:
        if name not in self.variables:
            raise SourceProgramError(f"undeclared variable {name!r}")
        ts.expect("[")
        subs = [_parse_affine_sum(ts)]
        while ts.peek() == ",":
            ts.next()
            subs.append(_parse_affine_sum(ts))
        ts.expect("]")
        if len(subs) != self.variables[name].dim:
            raise SourceProgramError(
                f"{name}: {len(subs)} subscripts for {self.variables[name].dim}-d variable"
            )
        self._record_occurrence(name, self._subscript_rows(name, subs))
        return StreamRead(name)

    def parse_atom(self, ts: _TokenStream) -> Expr:
        tok = ts.next()
        if tok == "(":
            e = self.parse_sum(ts)
            ts.expect(")")
            return e
        if tok == "-":
            return BinOp("-", Const(0), self.parse_atom(ts))
        if tok.isdigit():
            return Const(int(tok))
        if tok in ("min", "max"):
            ts.expect("(")
            left = self.parse_sum(ts)
            ts.expect(",")
            right = self.parse_sum(ts)
            ts.expect(")")
            return BinOp(tok, left, right)
        if tok.isidentifier():
            if ts.peek() == "[":
                return self.parse_ref(ts, tok)
            # loop index or size symbol used as a value
            from repro.lang.expr import IndexExpr

            return IndexExpr(Affine.var(tok))
        raise SourceProgramError(f"unexpected token {tok!r} in expression")

    def parse_term(self, ts: _TokenStream) -> Expr:
        left = self.parse_atom(ts)
        while ts.peek() == "*":
            ts.next()
            left = BinOp("*", left, self.parse_atom(ts))
        return left

    def parse_sum(self, ts: _TokenStream) -> Expr:
        left = self.parse_term(ts)
        while ts.peek() in ("+", "-"):
            op = ts.next()
            left = BinOp(op, left, self.parse_term(ts))
        return left

    def parse_condition(self, ts: _TokenStream) -> Condition:
        left = _parse_affine_sum(ts)
        rel = ts.next()
        if rel not in ("==", "!=", "<=", "<", ">=", ">"):
            raise SourceProgramError(f"bad relation {rel!r} in guard")
        right = _parse_affine_sum(ts)
        return Condition(left - right, rel)

    def parse_statement(self, ts: _TokenStream) -> Branch:
        condition: Condition | None = None
        if ts.peek() == "if":
            ts.next()
            condition = self.parse_condition(ts)
            ts.expect("->")
        name = ts.next()
        if not name.isidentifier():
            raise SourceProgramError(f"expected assignment target, got {name!r}")
        target = self.parse_ref(ts, name)
        ts.expect(":=")
        expr = self.parse_sum(ts)
        if not ts.at_end():
            raise SourceProgramError(f"trailing tokens after statement: {ts.tokens[ts.pos:]}")
        return Branch(condition, (Assign(target.name, expr),))


# ----------------------------------------------------------------------
# top-level program parsing
# ----------------------------------------------------------------------

def _strip_comment(line: str) -> str:
    return line.split("#", 1)[0].rstrip()


def _parse_var_decls(ts: _TokenStream) -> list[IndexedVariable]:
    out: list[IndexedVariable] = []
    while True:
        name = ts.next()
        if not name.isidentifier():
            raise SourceProgramError(f"bad variable name {name!r}")
        ts.expect("[")
        bounds: list[tuple[Bound, Bound]] = []
        while True:
            lo = _parse_bound(ts, "max", f"{name}: lower bound")
            ts.expect("..")
            hi = _parse_bound(ts, "min", f"{name}: upper bound")
            bounds.append((lo, hi))
            if ts.peek() == ",":
                ts.next()
                continue
            break
        ts.expect("]")
        out.append(IndexedVariable(name, tuple(bounds)))
        if ts.peek() == ",":
            ts.next()
            continue
        break
    if not ts.at_end():
        raise SourceProgramError("trailing tokens after var declaration")
    return out


def _parse_loop(
    ts: _TokenStream, sizes: Sequence[str], enclosing: Sequence[str]
) -> Loop:
    index = ts.next()
    if index in sizes:
        raise SourceProgramError(
            f"loop index {index!r} shadows a size symbol of the same name"
        )
    if index in enclosing:
        raise SourceProgramError(f"duplicate loop index {index!r}")
    ts.expect("=")
    lower = _parse_bound(ts, "max", f"loop {index}: left bound")
    ts.expect("<-")
    step_sign = 1
    if ts.peek() == "-":
        ts.next()
        step_sign = -1
    step_tok = ts.next()
    if step_tok != "1":
        raise SourceProgramError(f"loop step must be 1 or -1, got {step_tok!r}")
    ts.expect("->")
    upper = _parse_bound(ts, "min", f"loop {index}: right bound")
    if not ts.at_end():
        raise SourceProgramError("trailing tokens after loop header")
    indices = set(enclosing) | {index}
    for what, bound in (("left", lower), ("right", upper)):
        for piece in bound_args(bound):
            used = piece.free_symbols & indices
            if used:
                raise SourceProgramError(
                    f"loop {index}: {what} bound {bound} uses loop "
                    f"indices {sorted(used)}; bounds must be affine in the "
                    "size symbols only"
                )
    return Loop(index, lower, upper, step_sign)


def parse_program(text: str) -> SourceProgram:
    """Parse a complete source program from its textual form."""
    name = "program"
    sizes: list[str] = []
    variables: dict[str, IndexedVariable] = {}
    loops: list[Loop] = []
    branches: list[Branch] = []
    body_parser: _BodyParser | None = None

    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        tokens = tokenize(line)
        ts = _TokenStream(tokens, line)
        head = tokens[0]
        if head == "program":
            ts.next()
            name = ts.next()
        elif head == "size":
            ts.next()
            while not ts.at_end():
                sym = ts.next()
                if not sym.isidentifier():
                    raise SourceProgramError(f"bad size symbol {sym!r}")
                if sym in sizes:
                    raise SourceProgramError(f"duplicate size declaration {sym!r}")
                sizes.append(sym)
                if ts.peek() == ",":
                    ts.next()
        elif head == "var":
            ts.next()
            for v in _parse_var_decls(ts):
                if v.name in variables:
                    raise SourceProgramError(f"duplicate variable {v.name}")
                variables[v.name] = v
        elif head == "for":
            if branches:
                raise SourceProgramError("loop header after body statements")
            ts.next()
            loops.append(_parse_loop(ts, sizes, [lp.index for lp in loops]))
        else:
            if not loops:
                raise SourceProgramError(f"statement before any loop: {line!r}")
            if body_parser is None:
                body_parser = _BodyParser([lp.index for lp in loops], variables)
            branches.append(body_parser.parse_statement(ts))

    if not loops:
        raise SourceProgramError("program has no loops")
    if body_parser is None or not branches:
        raise SourceProgramError("program has no basic statement")

    # Streams are listed in *declaration* order (the paper's a, b, c ...).
    streams: list[Stream] = []
    for var_name, variable in variables.items():
        rows = body_parser.occurrences.get(var_name)
        if rows is None:
            raise SourceProgramError(f"declared but unused variable: {var_name}")
        streams.append(Stream(variable, Matrix(rows)))

    return SourceProgram(
        loops=tuple(loops),
        streams=tuple(streams),
        body=Body(tuple(branches)),
        size_symbols=tuple(sizes),
        name=name,
    )
