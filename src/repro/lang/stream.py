"""Streams: indexed variables plus their index maps (Section 3.1).

A *stream* pairs the name of an indexed variable with an index vector --
an ``(r-1)``-tuple of constant-free linear expressions in the loop indices,
represented by its *index map*: an ``(r-1) x r`` integer matrix of rank
``r-1``.  E.g. for three loops ``(i,j,k)``, the source occurrence
``A[i+k, j-k]`` has index map ``lambda (i,j,k).(i+k, j-k)``.

The rank requirement enforces full pipelining (Appendix A.1); the absence of
constants is structural -- a pure linear map cannot encode an affine offset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.linalg import Matrix, null_space_vector
from repro.geometry.point import Point
from repro.lang.variables import IndexedVariable
from repro.util.errors import RequirementViolation, SourceProgramError


@dataclass(frozen=True)
class Stream:
    """A stream ``s``: variable ``v`` accessed through index map ``M``."""

    variable: IndexedVariable
    index_map: Matrix

    def __post_init__(self) -> None:
        if self.index_map.nrows != self.variable.dim:
            raise SourceProgramError(
                f"stream {self.name}: index map has {self.index_map.nrows} rows "
                f"but variable has {self.variable.dim} dimensions"
            )
        for row in self.index_map.rows:
            for c in row:
                if not isinstance(c, int):
                    raise SourceProgramError(
                        f"stream {self.name}: index map entries must be integers"
                    )

    @property
    def name(self) -> str:
        """Streams are referred to by their variable's name (cf. App. D)."""
        return self.variable.name

    @property
    def loop_arity(self) -> int:
        """The number of loop indices ``r`` the map consumes."""
        return self.index_map.ncols

    def check_rank(self) -> None:
        """Appendix A.1: the index map must have rank ``r - 1``."""
        r = self.loop_arity
        if self.index_map.nrows != r - 1:
            raise RequirementViolation(
                f"stream {self.name}: index map must be ({r-1}) x {r}, "
                f"got {self.index_map.shape}"
            )
        if self.index_map.rank != r - 1:
            raise RequirementViolation(
                f"stream {self.name}: index map rank {self.index_map.rank} != {r-1}"
            )

    def element_of(self, x: Point) -> Point:
        """The identity ``M.x`` of the element accessed by basic statement x."""
        return self.index_map.apply_point(x)

    def null_direction(self) -> Point:
        """The spanning vector of ``null.M`` (rank r-1 guarantees dim 1).

        Two basic statements access the same element of this stream iff they
        differ by a multiple of this vector; it determines the stream's flow
        (Theorem 10).
        """
        self.check_rank()
        return null_space_vector(self.index_map)

    def __str__(self) -> str:
        return f"stream {self.name} (map {self.index_map!r})"
