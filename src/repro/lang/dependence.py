"""Data-dependence analysis for source programs.

Two basic statements ``x`` and ``x'`` touch the same element of stream ``s``
iff ``M.s.(x - x') = 0``, i.e. ``x - x'`` lies in the (one-dimensional,
thanks to the rank-(r-1) requirement) null space of the index map.  The
sequential execution order then orients that null vector into a *dependence
vector* ``d``: the statement at ``x`` must precede the one at ``x + d``.

A ``step`` function is consistent with the source program iff it strictly
increases along every dependence vector (this is the content of the paper's
assumption that the systolic array "respects the data dependences", and is
what :func:`check_step_function` verifies).  These vectors are also the raw
material for :mod:`repro.systolic.schedule`, which *synthesises* valid
``step`` functions, standing in for the external synthesis systems the
paper cites [5, 10, 11, 22].
"""

from __future__ import annotations

from repro.geometry.linalg import Matrix
from repro.geometry.point import Point, dot
from repro.lang.program import SourceProgram
from repro.util.errors import SystolicSpecError


def _lexicographic_orientation(program: SourceProgram, vector: Point) -> Point:
    """Orient a null vector along the sequential execution order.

    Sequential order enumerates loop ``i`` in the direction of its step, so
    ``x`` executes before ``x'`` iff the first non-zero component of
    ``(x' - x)``, *after* flipping components of negative-step loops, is
    positive.  The returned vector points from earlier to later iteration.
    """
    adjusted = [
        c * lp.step for c, lp in zip(vector, program.loops)
    ]
    first = next((c for c in adjusted if c != 0), 0)
    if first == 0:
        raise SystolicSpecError("zero dependence vector")
    return vector if first > 0 else -vector


def dependence_vectors(program: SourceProgram) -> dict[str, Point]:
    """Per-stream dependence vectors, oriented along sequential execution.

    For stream ``s`` the vector is the canonical spanning element of
    ``null(M.s)``, signed so that the statement at ``x`` sequentially
    precedes the one at ``x + d``.  Only streams that are *written* (or both
    read and written) induce true dependences, but the systolic model moves
    read-only streams identically, so every stream contributes.
    """
    out: dict[str, Point] = {}
    for s in program.streams:
        null = s.null_direction()
        out[s.name] = _lexicographic_orientation(program, null)
    return out


def check_step_function(program: SourceProgram, step: Matrix) -> None:
    """Verify that ``step`` strictly increases along every dependence.

    ``step`` is a ``1 x r`` integer matrix.  Raises
    :class:`SystolicSpecError` when some dependence is violated.  This is a
    necessary condition; the full consistency condition with ``place``
    (paper Eq. 1) is checked in :mod:`repro.systolic.check`.
    """
    if step.nrows != 1 or step.ncols != program.r:
        raise SystolicSpecError(
            f"step must be 1 x {program.r}, got {step.shape}"
        )
    tau = step.row(0)
    written = program.body.streams_written()
    for name, d in dependence_vectors(program).items():
        product = dot(tau, d)
        if name in written:
            if product <= 0:
                raise SystolicSpecError(
                    f"step {tuple(tau)} does not respect the dependence of "
                    f"stream {name}: step . {tuple(d)} = {product} <= 0"
                )
        elif product == 0:
            # A read-only stream's element would have to be at two places in
            # the same step -- shared access, which systolic arrays forbid.
            raise SystolicSpecError(
                f"step {tuple(tau)} maps two accesses of read-only stream "
                f"{name} to the same step (shared access is not allowed)"
            )
