"""Appendix A: requirements and restrictions on source programs.

*Requirements* (A.1) stem from the nature of systolic arrays; *restrictions*
(A.2) are additional limits of the paper's method.  The checks that concern
the distribution functions (`increment` components, neighbouring flows) live
in :mod:`repro.systolic.check` and :mod:`repro.core`, because they need
``step``/``place``; this module checks everything visible from the source
program alone:

A.1  r > 0 (we require r >= 2, since index maps must be (r-1) x r with
     rank r-1, which forces r >= 2 for non-trivial streams);
A.1  loop steps in {-1, +1} (enforced structurally by :class:`Loop`);
A.1  every index map is (r-1) x r with rank r-1;
A.2  loop bounds affine (or min/max of affines) in the problem size,
     never in the loop indices (checked here: the index space is a box);
A.2  each indexed variable is (r-1)-dimensional;
A.2  index vectors contain no constants (structural for parsed programs;
     re-checked here for programmatically built ones);
A.2  each basic statement accesses all of the streams;
A.2  each element of each variable is accessed by some statement
     (checked concretely at sample problem sizes).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.symbolic.minmax import bound_args
from repro.util.errors import RequirementViolation, RestrictionViolation


def validate_program(
    program: SourceProgram,
    *,
    sample_sizes: Sequence[Mapping[str, Numeric]] | None = None,
) -> None:
    """Raise ``RequirementViolation``/``RestrictionViolation`` on failure.

    ``sample_sizes`` are concrete problem-size bindings at which the
    surjectivity restriction ("every element is accessed") is checked; when
    omitted, a small default is derived by binding every size symbol to 3.
    """
    r = program.r
    if r < 2:
        raise RequirementViolation(
            f"program must have at least two nested loops, got {r}"
        )

    if not program.streams:
        raise RestrictionViolation("program accesses no streams")

    # A.2: loop/variable bounds are affine in the *size symbols*.  A loop
    # index leaking into a bound used to be folded silently into the
    # sample-size binding below (masquerading as a size symbol bound to
    # 3); reject it loudly instead -- the index space must be a box.
    indices = set(program.indices)
    for lp in program.loops:
        for which, bound in (("left", lp.lower), ("right", lp.upper)):
            used = frozenset().union(
                *(piece.free_symbols for piece in bound_args(bound))
            ) & indices
            if used:
                raise RestrictionViolation(
                    f"loop {lp.index}: {which} bound {bound} uses loop "
                    f"indices {sorted(used)}; bounds must be affine in the "
                    "size symbols only"
                )
    for v in program.variables:
        used = v.size_symbols & indices
        if used:
            raise RestrictionViolation(
                f"variable {v.name}: bounds use loop indices {sorted(used)}; "
                "variable spaces must be parameterised by size symbols only"
            )

    for s in program.streams:
        s.check_rank()  # (r-1) x r with rank r-1
        if s.variable.dim != r - 1:
            raise RestrictionViolation(
                f"variable {s.name} must be {r-1}-dimensional, is {s.variable.dim}-d"
            )
        if s.index_map.ncols != r:
            raise RequirementViolation(
                f"stream {s.name}: index map consumes {s.index_map.ncols} indices, "
                f"program has {r} loops"
            )

    accessed = program.body.streams_accessed()
    declared = {s.name for s in program.streams}
    missing = declared.difference(accessed)
    if missing:
        raise RestrictionViolation(
            f"basic statement does not access streams {sorted(missing)}"
        )
    unknown = accessed.difference(declared)
    if unknown:
        raise RestrictionViolation(
            f"basic statement accesses undeclared streams {sorted(unknown)}"
        )

    if sample_sizes is None:
        syms = set(program.size_symbols)
        for lp in program.loops:
            syms |= lp.lower.free_symbols | lp.upper.free_symbols
        for v in program.variables:
            syms |= v.size_symbols
        sample_sizes = [{s: 3 for s in sorted(syms)}]

    for env in sample_sizes:
        _check_coverage(program, env)


def _check_coverage(program: SourceProgram, env: Mapping[str, Numeric]) -> None:
    """Every element of every variable is accessed by some basic statement,
    and no statement steps outside a variable's space."""
    index_space = program.index_space(env)
    for s in program.streams:
        space = s.variable.space(env)
        touched = set()
        for x in index_space:
            el = s.element_of(x)
            if el not in space:
                raise RestrictionViolation(
                    f"stream {s.name}: statement {x} accesses element {el} "
                    f"outside {space.lo}..{space.hi} at size {dict(env)}"
                )
            touched.add(el)
        if len(touched) != space.size:
            untouched = space.size - len(touched)
            raise RestrictionViolation(
                f"stream {s.name}: {untouched} element(s) never accessed "
                f"at size {dict(env)} (the scheme requires full coverage)"
            )
