"""Expression and statement AST for the basic statement (Section 3.1).

The paper's basic statement is a guarded-command set

    if B_0 -> S_0 [] B_1 -> S_1 [] ... fi

where the guards ``B_j`` are boolean functions of the loop indices and the
computations ``S_j`` refer only to elements of the indexed variables selected
by the loop indices (the *streams*).  We model a basic statement as a
:class:`Body`: a sequence of :class:`Branch` (optional condition + list of
assignments).  A branch with ``condition=None`` is unconditional.

Value expressions (:class:`Expr`) are built from numeric constants, reads of
the current element of a stream (:class:`StreamRead`), affine forms in the
loop indices and problem-size symbols (:class:`IndexExpr`), and arithmetic
(:class:`BinOp`).  This is deliberately a *data* representation, not Python
closures: the compiler copies it verbatim into the target program, where the
same body is re-evaluated with stream values received from channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.symbolic.affine import Affine
from repro.util.errors import SourceProgramError

#: Runtime values carried on streams.  Exact numbers only.
RuntimeValue = Union[int, Fraction]

_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}

_RELATIONS = {
    "==": lambda v: v == 0,
    "!=": lambda v: v != 0,
    "<=": lambda v: v <= 0,
    "<": lambda v: v < 0,
    ">=": lambda v: v >= 0,
    ">": lambda v: v > 0,
}


class Expr:
    """Base class of value expressions."""

    def evaluate(
        self,
        streams: Mapping[str, RuntimeValue],
        indices: Mapping[str, int],
    ) -> RuntimeValue:
        raise NotImplementedError

    def stream_reads(self) -> frozenset[str]:
        """Names of streams read by this expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: RuntimeValue

    def evaluate(self, streams, indices):
        return self.value

    def stream_reads(self):
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class StreamRead(Expr):
    """The value of the current element of stream ``name``.

    In the source program this is e.g. ``a[i]``; inside the systolic program
    the element's identity is gone and only the value remains (Section 4.2),
    so the reference is by stream name alone.
    """

    name: str

    def evaluate(self, streams, indices):
        if self.name not in streams:
            raise SourceProgramError(f"no value for stream {self.name!r}")
        return streams[self.name]

    def stream_reads(self):
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IndexExpr(Expr):
    """An affine form in loop indices and problem-size symbols.

    Allowed by the source format because the loop body is a procedure
    parameterized by the loop indices; e.g. a guard ``i == 0`` or a
    computation ``c + i * b``.
    """

    affine: Affine

    def evaluate(self, streams, indices):
        v = self.affine.evaluate(indices)
        return int(v) if v.denominator == 1 else v

    def stream_reads(self):
        return frozenset()

    def __str__(self) -> str:
        return str(self.affine)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation (``+ - * min max``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise SourceProgramError(f"unknown operator {self.op!r}")

    def evaluate(self, streams, indices):
        return _BIN_OPS[self.op](
            self.left.evaluate(streams, indices),
            self.right.evaluate(streams, indices),
        )

    def stream_reads(self):
        return self.left.stream_reads() | self.right.stream_reads()

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Condition:
    """A boolean guard ``affine rel 0`` over loop indices / sizes."""

    affine: Affine
    relation: str  # one of ==, !=, <=, <, >=, >

    def __post_init__(self) -> None:
        if self.relation not in _RELATIONS:
            raise SourceProgramError(f"unknown relation {self.relation!r}")

    def evaluate(self, indices: Mapping[str, int]) -> bool:
        return _RELATIONS[self.relation](self.affine.evaluate(indices))

    def __str__(self) -> str:
        return f"{self.affine} {self.relation} 0"


@dataclass(frozen=True)
class Assign:
    """``stream := expr`` -- writes the current element of ``stream``."""

    stream: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.stream} := {self.expr}"


@dataclass(frozen=True)
class Branch:
    """One guarded command of the basic statement."""

    condition: Condition | None
    assigns: tuple[Assign, ...]

    def __str__(self) -> str:
        body = "; ".join(str(a) for a in self.assigns)
        if self.condition is None:
            return body
        return f"if {self.condition} -> {body} fi"


@dataclass(frozen=True)
class Body:
    """The basic statement: a sequence of guarded branches.

    Branches are executed in order; a branch runs its assignments when its
    condition holds (or unconditionally when it has none).
    """

    branches: tuple[Branch, ...]

    @staticmethod
    def single_assign(stream: str, expr: Expr) -> "Body":
        """The common one-assignment body, e.g. ``c := c + a * b``."""
        return Body((Branch(None, (Assign(stream, expr),)),))

    def streams_read(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for br in self.branches:
            for a in br.assigns:
                out |= a.expr.stream_reads()
        return out

    def streams_written(self) -> frozenset[str]:
        return frozenset(a.stream for br in self.branches for a in br.assigns)

    def streams_accessed(self) -> frozenset[str]:
        return self.streams_read() | self.streams_written()

    def execute(
        self,
        streams: Mapping[str, RuntimeValue],
        indices: Mapping[str, int],
    ) -> dict[str, RuntimeValue]:
        """Run the body on a snapshot of stream values; returns the updated
        values (the input mapping is not mutated)."""
        values = dict(streams)
        for br in self.branches:
            if br.condition is None or br.condition.evaluate(indices):
                for a in br.assigns:
                    values[a.stream] = a.expr.evaluate(values, indices)
        return values

    def __str__(self) -> str:
        return "; ".join(str(b) for b in self.branches)
