"""Nested-loop source programs (Section 3.1).

A :class:`SourceProgram` is ``r`` perfectly nested :class:`Loop`\\ s around a
:class:`~repro.lang.expr.Body`.  Loop bounds are affine in the problem-size
symbols; steps are ``+1`` or ``-1``.  As in the paper, ``lb_i <= rb_i``
always holds, and a negative step means the loop runs from the right bound
down to the left bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.lang.expr import Body
from repro.lang.stream import Stream
from repro.lang.variables import IndexedVariable
from repro.symbolic.affine import Affine, AffineLike, Numeric
from repro.symbolic.minmax import Bound, BoundLike, as_bound, check_bound_kind
from repro.util.errors import RequirementViolation, SourceProgramError


@dataclass(frozen=True)
class Loop:
    """``for x = lb <- st -> rb`` with ``st`` in ``{-1, +1}``.

    Bounds may be plain affine expressions or :class:`Extremum` forms,
    restricted to ``max`` on the left bound and ``min`` on the right so
    that membership ``lb <= x <= rb`` is always a conjunction.
    """

    index: str
    lower: Bound
    upper: Bound
    step: int = 1

    def __post_init__(self) -> None:
        if not self.index.isidentifier():
            raise SourceProgramError(f"bad loop index {self.index!r}")
        if self.step not in (-1, 1):
            raise RequirementViolation(
                f"loop {self.index}: step must be -1 or +1, got {self.step}"
            )
        check_bound_kind(self.lower, "max", f"loop {self.index}: left bound")
        check_bound_kind(self.upper, "min", f"loop {self.index}: right bound")

    @staticmethod
    def of(index: str, lower: BoundLike, upper: BoundLike, step: int = 1) -> "Loop":
        return Loop(index, as_bound(lower), as_bound(upper), step)

    def iteration_values(self, env: Mapping[str, Numeric]) -> range:
        """Concrete iteration sequence in *execution* order."""
        lo = self.lower.evaluate_int(env)
        hi = self.upper.evaluate_int(env)
        if lo > hi:
            raise SourceProgramError(
                f"loop {self.index}: lb {lo} > rb {hi} at size {dict(env)}"
            )
        if self.step == 1:
            return range(lo, hi + 1)
        return range(hi, lo - 1, -1)

    def __str__(self) -> str:
        return f"for {self.index} = {self.lower} <- {self.step:+d} -> {self.upper}"


@dataclass(frozen=True)
class SourceProgram:
    """A complete source program: loops, streams, basic statement."""

    loops: tuple[Loop, ...]
    streams: tuple[Stream, ...]
    body: Body
    size_symbols: tuple[str, ...] = ()
    name: str = "program"

    def __post_init__(self) -> None:
        if len({lp.index for lp in self.loops}) != len(self.loops):
            raise SourceProgramError("duplicate loop indices")
        names = [s.name for s in self.streams]
        if len(set(names)) != len(names):
            raise SourceProgramError("duplicate stream/variable names")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def r(self) -> int:
        """The number of nested loops."""
        return len(self.loops)

    @property
    def indices(self) -> tuple[str, ...]:
        return tuple(lp.index for lp in self.loops)

    @property
    def variables(self) -> tuple[IndexedVariable, ...]:
        return tuple(s.variable for s in self.streams)

    def stream(self, name: str) -> Stream:
        for s in self.streams:
            if s.name == name:
                return s
        raise SourceProgramError(f"no stream named {name!r}")

    # ------------------------------------------------------------------
    # the index space (Section 5)
    # ------------------------------------------------------------------
    def index_space(self, env: Mapping[str, Numeric]) -> Rectangle:
        """The concrete rectangular index space ``IS`` at size ``env``."""
        lo = Point(lp.lower.evaluate_int(env) for lp in self.loops)
        hi = Point(lp.upper.evaluate_int(env) for lp in self.loops)
        return Rectangle(lo, hi)

    def iter_index_points_sequential(
        self, env: Mapping[str, Numeric]
    ) -> Iterator[Point]:
        """Index points in the *sequential execution order* of the loops
        (respecting each loop's step direction)."""
        ranges = [lp.iteration_values(env) for lp in self.loops]
        for combo in itertools.product(*ranges):
            yield Point(combo)

    def index_env(self, x: Sequence[int]) -> dict[str, int]:
        """Bind loop-index names to the coordinates of index point ``x``."""
        if len(x) != self.r:
            raise SourceProgramError(f"index point {x} has wrong dimension")
        return {lp.index: int(c) for lp, c in zip(self.loops, x)}

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        lines = [f"-- {self.name}"]
        for v in self.variables:
            lines.append(f"int {v}")
        indent = ""
        for lp in self.loops:
            lines.append(indent + str(lp))
            indent += "  "
        lines.append(indent + str(self.body))
        return "\n".join(lines)

    def to_source(self) -> str:
        """Render back to the concrete syntax accepted by ``parse_program``.

        Stream references regain their subscripts from the index maps.  A
        branch with several assignments is emitted one statement per line
        (equivalent under the sequential semantics, since conditions depend
        only on the loop indices).
        """
        from repro.lang.expr import (
            Assign,
            BinOp,
            Const,
            Expr,
            IndexExpr,
            StreamRead,
        )

        subscripts: dict[str, str] = {}
        for s in self.streams:
            parts = []
            for row in s.index_map.rows:
                affine = Affine(
                    {idx: c for idx, c in zip(self.indices, row)}
                )
                parts.append(str(affine))
            subscripts[s.name] = "[" + ", ".join(parts) + "]"

        def expr_src(e: "Expr") -> str:
            if isinstance(e, Const):
                return str(e.value)
            if isinstance(e, StreamRead):
                return e.name + subscripts[e.name]
            if isinstance(e, IndexExpr):
                return f"({e.affine})"
            if isinstance(e, BinOp):
                if e.op in ("min", "max"):
                    return f"{e.op}({expr_src(e.left)}, {expr_src(e.right)})"
                return f"({expr_src(e.left)} {e.op} {expr_src(e.right)})"
            raise SourceProgramError(f"cannot render {e!r}")

        lines = [f"program {self.name}"]
        syms = sorted(
            set(self.size_symbols)
            | {
                sym
                for lp in self.loops
                for sym in lp.lower.free_symbols | lp.upper.free_symbols
            }
            | {sym for v in self.variables for sym in v.size_symbols}
        )
        if syms:
            lines.append("size " + ", ".join(syms))
        for v in self.variables:
            dims = ", ".join(f"{lo}..{hi}" for lo, hi in v.bounds)
            lines.append(f"var {v.name}[{dims}]")
        for lp in self.loops:
            step = "1" if lp.step == 1 else "-1"
            lines.append(f"for {lp.index} = {lp.lower} <- {step} -> {lp.upper}")
        for branch in self.body.branches:
            for assign in branch.assigns:
                stmt = (
                    f"{assign.stream}{subscripts[assign.stream]} := "
                    f"{expr_src(assign.expr)}"
                )
                if branch.condition is not None:
                    cond = branch.condition
                    stmt = f"if {cond.affine} {cond.relation} 0 -> {stmt}"
                lines.append("    " + stmt)
        return "\n".join(lines)
