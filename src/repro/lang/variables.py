"""Indexed variables and their variable spaces (Sections 3.1 and 5).

An indexed variable is a mapping from a rectangular box of lattice points
(its *variable space* ``VS.v``) to values.  The bounds of each dimension are
affine expressions in the problem-size symbols, so a variable is symbolic
until instantiated at a concrete size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.symbolic.affine import Numeric
from repro.symbolic.minmax import Bound, BoundLike, as_bound, check_bound_kind
from repro.util.errors import SourceProgramError


@dataclass(frozen=True)
class IndexedVariable:
    """A declared indexed variable, e.g. ``int c[0..2*n]``.

    ``bounds`` holds one ``(lower, upper)`` pair per dimension; both
    bounds are inclusive.  As for loops, a lower bound may be a ``max``
    form and an upper bound a ``min`` form of affine expressions.
    """

    name: str
    bounds: tuple[tuple[Bound, Bound], ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SourceProgramError(f"bad variable name {self.name!r}")
        if not self.bounds:
            raise SourceProgramError(f"variable {self.name} needs >= 1 dimension")
        for axis, (lo, hi) in enumerate(self.bounds):
            check_bound_kind(lo, "max", f"variable {self.name} dim {axis}: lower bound")
            check_bound_kind(hi, "min", f"variable {self.name} dim {axis}: upper bound")

    @staticmethod
    def of(name: str, *bounds: tuple[BoundLike, BoundLike]) -> "IndexedVariable":
        return IndexedVariable(
            name,
            tuple((as_bound(lo), as_bound(hi)) for lo, hi in bounds),
        )

    @property
    def dim(self) -> int:
        return len(self.bounds)

    @property
    def size_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for lo, hi in self.bounds:
            out |= lo.free_symbols | hi.free_symbols
        return out

    def lower(self, axis: int) -> Bound:
        return self.bounds[axis][0]

    def upper(self, axis: int) -> Bound:
        return self.bounds[axis][1]

    def space(self, env: Mapping[str, Numeric]) -> Rectangle:
        """The concrete variable space ``VS.v`` at problem size ``env``."""
        lo = Point(b[0].evaluate_int(env) for b in self.bounds)
        hi = Point(b[1].evaluate_int(env) for b in self.bounds)
        return Rectangle(lo, hi)

    def __str__(self) -> str:
        dims = ", ".join(f"{lo}..{hi}" for lo, hi in self.bounds)
        return f"{self.name}[{dims}]"
