"""The source language (Section 3.1 of the paper).

A source program is a set of ``r`` perfectly nested loops with unit steps
and affine bounds in the *problem size* symbols, around a *basic statement*
that accesses ``(r-1)``-dimensional indexed variables through constant-free
affine index maps (the *streams*).

This package provides the AST (:mod:`repro.lang.expr`,
:mod:`repro.lang.program`), indexed variables and streams
(:mod:`repro.lang.variables`, :mod:`repro.lang.stream`), a small textual
front end (:mod:`repro.lang.parser`), the Appendix-A requirement /
restriction checker (:mod:`repro.lang.validate`), the sequential reference
interpreter used as the verification oracle (:mod:`repro.lang.interpreter`),
and data-dependence analysis (:mod:`repro.lang.dependence`).
"""

from repro.lang.expr import (
    Expr,
    Const,
    StreamRead,
    IndexExpr,
    BinOp,
    Condition,
    Assign,
    Branch,
    Body,
)
from repro.lang.variables import IndexedVariable
from repro.lang.stream import Stream
from repro.lang.program import Loop, SourceProgram
from repro.lang.parser import parse_program, parse_affine
from repro.lang.validate import validate_program
from repro.lang.interpreter import run_sequential
from repro.lang.dependence import dependence_vectors, check_step_function

__all__ = [
    "Expr",
    "Const",
    "StreamRead",
    "IndexExpr",
    "BinOp",
    "Condition",
    "Assign",
    "Branch",
    "Body",
    "IndexedVariable",
    "Stream",
    "Loop",
    "SourceProgram",
    "parse_program",
    "parse_affine",
    "validate_program",
    "run_sequential",
    "dependence_vectors",
    "check_step_function",
]
